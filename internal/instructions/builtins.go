package instructions

import (
	"fmt"
	"math"

	"github.com/systemds/systemds-go/internal/frame"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// SolveInst solves linear systems and related dense linear algebra: "solve",
// "inv", "cholesky", and "eigen" (two outputs: values, vectors).
type SolveInst struct {
	base
	A, B Operand
}

// NewSolve creates a solve(A, b) instruction.
func NewSolve(out string, a, b Operand) *SolveInst {
	inst := &SolveInst{A: a, B: b}
	inst.base = newBase("solve", []string{out}, "", a, b)
	return inst
}

// NewInverse creates an inv(A) instruction.
func NewInverse(out string, a Operand) *SolveInst {
	inst := &SolveInst{A: a}
	inst.base = newBase("inv", []string{out}, "", a)
	return inst
}

// NewCholesky creates a cholesky(A) instruction.
func NewCholesky(out string, a Operand) *SolveInst {
	inst := &SolveInst{A: a}
	inst.base = newBase("cholesky", []string{out}, "", a)
	return inst
}

// NewEigen creates an eigen(A) instruction with two outputs (values, vectors).
func NewEigen(outValues, outVectors string, a Operand) *SolveInst {
	inst := &SolveInst{A: a}
	inst.base = newBase("eigen", []string{outValues, outVectors}, "", a)
	return inst
}

// Execute implements runtime.Instruction.
func (i *SolveInst) Execute(ctx *runtime.Context) error {
	a, err := i.A.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	switch i.opcode {
	case "solve":
		b, err := i.B.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		res, err := matrix.Solve(a, b)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
	case "inv":
		res, err := matrix.Inverse(a)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
	case "cholesky":
		res, err := matrix.Cholesky(a)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
	case "eigen":
		values, vectors, err := matrix.EigenSym(a)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], values)
		ctx.SetMatrix(i.outs[1], vectors)
	default:
		return fmt.Errorf("instructions: unknown solver op %q", i.opcode)
	}
	return nil
}

// CastInst implements casts between scalars and matrices and between scalar
// value types: "castdts" (as.scalar), "castsdm" (as.matrix), "as.double",
// "as.integer", "as.logical".
type CastInst struct {
	base
	In Operand
}

// NewCast creates a cast instruction.
func NewCast(opcode, out string, in Operand) *CastInst {
	inst := &CastInst{In: in}
	inst.base = newBase(opcode, []string{out}, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *CastInst) Execute(ctx *runtime.Context) error {
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	switch i.opcode {
	case "castdts": // as.scalar
		switch v := d.(type) {
		case *runtime.Scalar:
			ctx.Set(i.outs[0], v)
		case *runtime.MatrixObject, *runtime.BlockedMatrixObject,
			*runtime.CompressedMatrixObject, *runtime.TransposedCompressedObject:
			blk, err := i.In.MatrixBlockFor(ctx, i.opcode)
			if err != nil {
				return err
			}
			if blk.Rows() != 1 || blk.Cols() != 1 {
				return fmt.Errorf("instructions: as.scalar requires a 1x1 matrix, got %dx%d", blk.Rows(), blk.Cols())
			}
			ctx.Set(i.outs[0], runtime.NewDouble(blk.Get(0, 0)))
		default:
			return fmt.Errorf("instructions: as.scalar unsupported on %s", d.DataType())
		}
	case "castsdm": // as.matrix
		switch v := d.(type) {
		case *runtime.MatrixObject:
			ctx.Set(i.outs[0], v)
		case *runtime.BlockedMatrixObject:
			ctx.Set(i.outs[0], v)
		case *runtime.CompressedMatrixObject, *runtime.TransposedCompressedObject:
			// as.matrix of a compressed value is the value itself: keep the
			// compressed representation, consumers dispatch as usual
			ctx.Set(i.outs[0], v)
		case *runtime.Scalar:
			m := matrix.NewDense(1, 1)
			m.Set(0, 0, v.Float64())
			ctx.SetMatrix(i.outs[0], m)
		case *runtime.FrameObject:
			m, err := v.Frame.ToMatrix()
			if err != nil {
				return err
			}
			ctx.SetMatrix(i.outs[0], m)
		default:
			return fmt.Errorf("instructions: as.matrix unsupported on %s", d.DataType())
		}
	case "as.double":
		s, err := i.In.Scalar(ctx)
		if err != nil {
			return err
		}
		ctx.Set(i.outs[0], runtime.NewDouble(s.Float64()))
	case "as.integer":
		s, err := i.In.Scalar(ctx)
		if err != nil {
			return err
		}
		ctx.Set(i.outs[0], runtime.NewInt(int64(s.Float64())))
	case "as.logical":
		s, err := i.In.Scalar(ctx)
		if err != nil {
			return err
		}
		ctx.Set(i.outs[0], runtime.NewBool(s.Bool()))
	default:
		return fmt.Errorf("instructions: unknown cast %q", i.opcode)
	}
	return nil
}

// ParamBuiltinInst implements parameterized builtins with named parameters:
// removeEmpty, replace, order, table, quantile, rowIndexMax-like helpers.
type ParamBuiltinInst struct {
	base
	Params map[string]Operand
}

// NewParamBuiltin creates a parameterized builtin instruction.
func NewParamBuiltin(opcode, out string, params map[string]Operand) *ParamBuiltinInst {
	ops := make([]Operand, 0, len(params))
	for _, k := range sortedParamKeys(params) {
		ops = append(ops, params[k])
	}
	inst := &ParamBuiltinInst{Params: params}
	inst.base = newBase(opcode, []string{out}, paramDesc(params), ops...)
	return inst
}

func sortedParamKeys(params map[string]Operand) []string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

func paramDesc(params map[string]Operand) string {
	s := ""
	for _, k := range sortedParamKeys(params) {
		o := params[k]
		if o.IsLit {
			s += k + "=" + o.Lit.StringValue() + ";"
		} else {
			s += k + "=°" + o.Name + ";"
		}
	}
	return s
}

func (i *ParamBuiltinInst) param(name string) (Operand, bool) {
	o, ok := i.Params[name]
	return o, ok
}

// Execute implements runtime.Instruction.
func (i *ParamBuiltinInst) Execute(ctx *runtime.Context) error {
	switch i.opcode {
	case "removeEmpty":
		target, ok := i.param("target")
		if !ok {
			return fmt.Errorf("instructions: removeEmpty requires target")
		}
		blk, err := target.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		margin := "rows"
		if m, ok := i.param("margin"); ok {
			margin, err = m.StringValue(ctx)
			if err != nil {
				return err
			}
		}
		res, err := matrix.RemoveEmpty(blk, margin)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
	case "replace":
		target, ok := i.param("target")
		if !ok {
			return fmt.Errorf("instructions: replace requires target")
		}
		blk, err := target.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		pattern, err := i.Params["pattern"].Float64(ctx)
		if err != nil {
			return err
		}
		replacement, err := i.Params["replacement"].Float64(ctx)
		if err != nil {
			return err
		}
		out := blk.Copy().ToDense()
		vals := out.DenseValues()
		for idx, v := range vals {
			if v == pattern || (math.IsNaN(pattern) && math.IsNaN(v)) {
				vals[idx] = replacement
			}
		}
		out.RecomputeNNZ()
		ctx.SetMatrix(i.outs[0], out)
	case "order":
		target, ok := i.param("target")
		if !ok {
			return fmt.Errorf("instructions: order requires target")
		}
		blk, err := target.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		by := 1
		if b, ok := i.param("by"); ok {
			by, err = b.Int(ctx)
			if err != nil {
				return err
			}
		}
		decreasing := false
		if dOp, ok := i.param("decreasing"); ok {
			s, err := dOp.Scalar(ctx)
			if err != nil {
				return err
			}
			decreasing = s.Bool()
		}
		indexReturn := false
		if iOp, ok := i.param("index.return"); ok {
			s, err := iOp.Scalar(ctx)
			if err != nil {
				return err
			}
			indexReturn = s.Bool()
		}
		res, err := matrix.Order(blk, by-1, decreasing, indexReturn)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
	case "table":
		a, err := i.Params["a"].MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		b, err := i.Params["b"].MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], matrix.Table(a, b))
	case "quantile":
		target, err := i.Params["target"].MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		p, err := i.Params["p"].Float64(ctx)
		if err != nil {
			return err
		}
		ctx.Set(i.outs[0], runtime.NewDouble(matrix.Quantile(target, p)))
	case "selectRows":
		target, err := i.Params["target"].MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		idx, err := i.Params["index"].MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		res, err := matrix.SelectRows(target, idx)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
	default:
		return fmt.Errorf("instructions: unknown parameterized builtin %q", i.opcode)
	}
	return nil
}

// TransformInst implements transformencode (fit + apply, two outputs: encoded
// matrix and encoder metadata as a list) and transformapply (apply an
// existing encoder).
type TransformInst struct {
	base
	Target Operand
	Spec   Operand // spec string: "recode=c1,c2;dummycode=c3;bin=c4:5;impute=c5:mean;scale=c6"
	Meta   Operand // for transformapply: the encoder list produced by transformencode
}

// NewTransformEncode creates a transformencode instruction with outputs
// (encoded matrix, metadata).
func NewTransformEncode(outX, outMeta string, target, spec Operand) *TransformInst {
	inst := &TransformInst{Target: target, Spec: spec}
	inst.base = newBase("transformencode", []string{outX, outMeta}, "", target, spec)
	return inst
}

// NewTransformApply creates a transformapply instruction.
func NewTransformApply(out string, target, meta Operand) *TransformInst {
	inst := &TransformInst{Target: target, Meta: meta}
	inst.base = newBase("transformapply", []string{out}, "", target, meta)
	return inst
}

// encoderHolder wraps a trained frame encoder as runtime data inside a list.
type encoderHolder struct {
	enc *frame.Encoder
}

func (encoderHolder) DataType() types.DataType { return types.List }
func (encoderHolder) String() string           { return "TransformEncoder" }

// Execute implements runtime.Instruction.
func (i *TransformInst) Execute(ctx *runtime.Context) error {
	fo, err := resolveFrame(ctx, i.Target)
	if err != nil {
		return err
	}
	switch i.opcode {
	case "transformencode":
		specStr, err := i.Spec.StringValue(ctx)
		if err != nil {
			return err
		}
		spec, err := ParseTransformSpec(specStr)
		if err != nil {
			return err
		}
		x, enc, err := frame.Encode(fo, spec)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], x)
		ctx.Set(i.outs[1], runtime.NewListObject([]runtime.Data{encoderHolder{enc: enc}}, []string{"encoder"}))
	case "transformapply":
		metaData, err := i.Meta.Resolve(ctx)
		if err != nil {
			return err
		}
		lo, ok := metaData.(*runtime.ListObject)
		if !ok {
			return fmt.Errorf("instructions: transformapply meta must be the list returned by transformencode")
		}
		encData, ok := lo.Lookup("encoder")
		if !ok {
			return fmt.Errorf("instructions: transformapply meta list has no encoder")
		}
		holder, ok := encData.(encoderHolder)
		if !ok {
			return fmt.Errorf("instructions: transformapply meta is not a transform encoder")
		}
		x, err := holder.enc.Apply(fo)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], x)
	default:
		return fmt.Errorf("instructions: unknown transform op %q", i.opcode)
	}
	return nil
}

func resolveFrame(ctx *runtime.Context, op Operand) (*frame.FrameBlock, error) {
	d, err := op.Resolve(ctx)
	if err != nil {
		return nil, err
	}
	switch v := d.(type) {
	case *runtime.FrameObject:
		return v.Frame, nil
	case *runtime.MatrixObject:
		blk, err := v.Acquire()
		if err != nil {
			return nil, err
		}
		return frame.FromMatrix(blk), nil
	case *runtime.BlockedMatrixObject:
		blk, err := v.Collect()
		if err != nil {
			return nil, err
		}
		return frame.FromMatrix(blk), nil
	case *runtime.CompressedMatrixObject:
		blk, err := v.DecompressFor("frame")
		if err != nil {
			return nil, err
		}
		return frame.FromMatrix(blk), nil
	case *runtime.TransposedCompressedObject:
		blk, err := v.MaterializeFor("frame")
		if err != nil {
			return nil, err
		}
		return frame.FromMatrix(blk), nil
	default:
		return nil, fmt.Errorf("instructions: expected a frame, got %s", d.DataType())
	}
}

// ParseTransformSpec parses the compact transform spec syntax used by the DML
// transformencode builtin: semicolon-separated clauses
// "recode=a,b;dummycode=c;bin=d:4;impute=e:mean;scale=f,g".
func ParseTransformSpec(s string) (frame.TransformSpec, error) {
	spec := frame.TransformSpec{Bin: map[string]int{}, Impute: map[string]string{}}
	if s == "" {
		return spec, nil
	}
	for _, clause := range splitNonEmpty(s, ';') {
		key, value, found := cut(clause, '=')
		if !found {
			return spec, fmt.Errorf("instructions: invalid transform clause %q", clause)
		}
		switch key {
		case "recode":
			spec.Recode = append(spec.Recode, splitNonEmpty(value, ',')...)
		case "dummycode":
			spec.DummyCode = append(spec.DummyCode, splitNonEmpty(value, ',')...)
		case "scale":
			spec.Scale = append(spec.Scale, splitNonEmpty(value, ',')...)
		case "bin":
			for _, b := range splitNonEmpty(value, ',') {
				col, nStr, ok := cut(b, ':')
				if !ok {
					return spec, fmt.Errorf("instructions: bin clause %q needs col:bins", b)
				}
				n := 0
				if _, err := fmt.Sscanf(nStr, "%d", &n); err != nil {
					return spec, fmt.Errorf("instructions: bin count %q: %v", nStr, err)
				}
				spec.Bin[col] = n
			}
		case "impute":
			for _, b := range splitNonEmpty(value, ',') {
				col, method, ok := cut(b, ':')
				if !ok {
					return spec, fmt.Errorf("instructions: impute clause %q needs col:method", b)
				}
				spec.Impute[col] = method
			}
		default:
			return spec, fmt.Errorf("instructions: unknown transform clause %q", key)
		}
	}
	return spec, nil
}

func splitNonEmpty(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func cut(s string, sep byte) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}
