package instructions

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/lineage"
	"github.com/systemds/systemds-go/internal/runtime"
)

// FCallInst calls a user-defined or DML-bodied builtin function
// (opcode "fcall"): arguments are evaluated in the caller, bound to the
// function's parameters in a fresh child context, the function body executes,
// and the declared return values are assigned to the caller's target
// variables. Lineage items flow through the call so intermediates computed
// inside the function are reusable across calls (the lmDS case of Figure 5).
type FCallInst struct {
	base
	FuncName   string
	Positional []Operand
	Named      map[string]Operand
	Targets    []string
}

// NewFCall creates a function call instruction.
func NewFCall(funcName string, positional []Operand, named map[string]Operand, targets []string) *FCallInst {
	all := append([]Operand(nil), positional...)
	for _, k := range sortedNamedKeys(named) {
		all = append(all, named[k])
	}
	inst := &FCallInst{FuncName: funcName, Positional: positional, Named: named, Targets: targets}
	inst.base = newBase("fcall", targets, funcName, all...)
	return inst
}

func sortedNamedKeys(named map[string]Operand) []string {
	keys := make([]string, 0, len(named))
	for k := range named {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

// Execute implements runtime.Instruction.
func (i *FCallInst) Execute(ctx *runtime.Context) error {
	if ctx.Prog == nil {
		return fmt.Errorf("instructions: fcall %s outside of a program", i.FuncName)
	}
	fb, ok := ctx.Prog.Function(i.FuncName)
	if !ok {
		return fmt.Errorf("instructions: call to unknown function %q", i.FuncName)
	}
	positional := make([]runtime.Data, len(i.Positional))
	posLineage := make([]*lineage.Item, len(i.Positional))
	for idx, op := range i.Positional {
		d, err := op.Resolve(ctx)
		if err != nil {
			return fmt.Errorf("instructions: fcall %s argument %d: %w", i.FuncName, idx+1, err)
		}
		positional[idx] = d
		posLineage[idx] = operandLineage(ctx, op)
	}
	named := map[string]runtime.Data{}
	namedLineage := map[string]*lineage.Item{}
	for name, op := range i.Named {
		d, err := op.Resolve(ctx)
		if err != nil {
			return fmt.Errorf("instructions: fcall %s argument %s: %w", i.FuncName, name, err)
		}
		named[name] = d
		namedLineage[name] = operandLineage(ctx, op)
	}
	outs, lins, err := fb.Call(ctx, positional, named, posLineage, namedLineage)
	if err != nil {
		return err
	}
	if len(i.Targets) > len(outs) {
		return fmt.Errorf("instructions: function %s returns %d values, %d requested", i.FuncName, len(outs), len(i.Targets))
	}
	for idx, target := range i.Targets {
		ctx.Set(target, outs[idx])
		if idx < len(lins) && lins[idx] != nil {
			ctx.Lineage.Set(target, lins[idx])
		}
	}
	return nil
}

func operandLineage(ctx *runtime.Context, op Operand) *lineage.Item {
	if op.IsLit {
		return lineage.NewLiteral(op.Lit.StringValue())
	}
	return ctx.Lineage.Get(op.Name)
}
