package instructions

import (
	"github.com/systemds/systemds-go/internal/compress"
	"github.com/systemds/systemds-go/internal/runtime"
)

// CompressInst executes a compression decision site (opcode "compress"): the
// sample-based planner in internal/compress estimates per-column cardinality
// and run structure, picks the cheapest encoding per column, and rejects
// compression outright when the estimated ratio is below its threshold. A
// rejected attempt (or a non-matrix operand) rebinds the original value, so
// the site is always safe to execute.
type CompressInst struct {
	base
	In Operand
	// EstBytes is the planner's estimated uncompressed operand size (-1
	// unknown), surfaced next to the achieved compressed size in the plan
	// statistics.
	EstBytes int64
}

// NewCompress creates a compress instruction.
func NewCompress(out string, in Operand) *CompressInst {
	inst := &CompressInst{In: in, EstBytes: -1}
	inst.base = newBase("compress", []string{out}, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *CompressInst) Execute(ctx *runtime.Context) error {
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	mo, ok := d.(*runtime.MatrixObject)
	if !ok {
		// already compressed, scalar, frame, blocked or federated: the site
		// does not apply; keep the value as-is
		ctx.Set(i.outs[0], d)
		return nil
	}
	blk, err := mo.Acquire()
	if err != nil {
		return err
	}
	cm, _, accepted := compress.Compress(blk, compress.PlannerConfig{}, ctx.Config.Threads())
	if !accepted {
		ctx.CountCompressionRejected()
		ctx.RecordPlan(i.opcode, "reject", i.EstBytes, blk.InMemorySize())
		ctx.Set(i.outs[0], d)
		return nil
	}
	ctx.CountCompression(blk.InMemorySize(), cm.InMemorySize())
	ctx.RecordPlan(i.opcode, cm.EncodingSummary(), i.EstBytes, cm.InMemorySize())
	ctx.SetCompressed(i.outs[0], cm)
	return nil
}

// resolveCompressed returns the compressed matrix behind a data object when
// the operand is a first-class compressed value.
func resolveCompressed(d runtime.Data) (*runtime.CompressedMatrixObject, bool) {
	co, ok := d.(*runtime.CompressedMatrixObject)
	return co, ok
}
