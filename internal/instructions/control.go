package instructions

import (
	"fmt"
	"path/filepath"
	"strings"

	sdsio "github.com/systemds/systemds-go/internal/io"
	"github.com/systemds/systemds-go/internal/lineage"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

// AssignInst copies a value (variable or literal) to an output variable
// (opcode "assignvar").
type AssignInst struct {
	base
	In Operand
}

// NewAssign creates a variable copy instruction.
func NewAssign(out string, in Operand) *AssignInst {
	inst := &AssignInst{In: in}
	inst.base = newBase("assignvar", []string{out}, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *AssignInst) Execute(ctx *runtime.Context) error {
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	ctx.Set(i.outs[0], d)
	return nil
}

// PrintInst prints a scalar or matrix to the context output (opcode "print").
type PrintInst struct {
	base
	In Operand
}

// NewPrint creates a print instruction.
func NewPrint(in Operand) *PrintInst {
	inst := &PrintInst{In: in}
	inst.base = newBase("print", nil, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *PrintInst) Execute(ctx *runtime.Context) error {
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	switch v := d.(type) {
	case *runtime.Scalar:
		fmt.Fprintln(ctx.Out, v.StringValue())
	case *runtime.MatrixObject, *runtime.BlockedMatrixObject,
		*runtime.CompressedMatrixObject, *runtime.TransposedCompressedObject:
		// sinks acquire local matrices, lazily collect blocked ones and
		// transparently decompress compressed ones
		blk, err := i.In.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		fmt.Fprintln(ctx.Out, blk.String())
	default:
		fmt.Fprintln(ctx.Out, d.String())
	}
	return nil
}

// StopInst aborts execution with an error message (opcode "stop").
type StopInst struct {
	base
	Message Operand
}

// NewStop creates a stop instruction.
func NewStop(msg Operand) *StopInst {
	inst := &StopInst{Message: msg}
	inst.base = newBase("stop", nil, "", msg)
	return inst
}

// Execute implements runtime.Instruction.
func (i *StopInst) Execute(ctx *runtime.Context) error {
	msg, err := i.Message.StringValue(ctx)
	if err != nil {
		msg = "stop"
	}
	return fmt.Errorf("stop: %s", msg)
}

// AssertInst fails when its scalar input is false (opcode "assert").
type AssertInst struct {
	base
	Cond Operand
}

// NewAssert creates an assert instruction.
func NewAssert(cond Operand) *AssertInst {
	inst := &AssertInst{Cond: cond}
	inst.base = newBase("assert", nil, "", cond)
	return inst
}

// Execute implements runtime.Instruction.
func (i *AssertInst) Execute(ctx *runtime.Context) error {
	s, err := i.Cond.Scalar(ctx)
	if err != nil {
		return err
	}
	if !s.Bool() {
		return fmt.Errorf("assert: assertion failed")
	}
	return nil
}

// ReadInst reads a matrix or frame from a file (opcode "read"). The format is
// determined by the format parameter or the file extension: csv, binary,
// libsvm.
type ReadInst struct {
	base
	Path     Operand
	Format   Operand
	DataKind Operand // "matrix" (default) or "frame"
	Header   Operand
}

// NewRead creates a read instruction.
func NewRead(out string, path, format, dataKind, header Operand) *ReadInst {
	inst := &ReadInst{Path: path, Format: format, DataKind: dataKind, Header: header}
	inst.base = newBase("read", []string{out}, "", path, format, dataKind, header)
	return inst
}

// Execute implements runtime.Instruction.
func (i *ReadInst) Execute(ctx *runtime.Context) error {
	path, err := i.Path.StringValue(ctx)
	if err != nil {
		return err
	}
	format, _ := i.Format.StringValue(ctx)
	kind, _ := i.DataKind.StringValue(ctx)
	header := false
	if s, err := i.Header.Scalar(ctx); err == nil {
		header = s.Bool()
	}
	if format == "" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".bin":
			format = "binary"
		case ".libsvm", ".svm":
			format = "libsvm"
		default:
			format = "csv"
		}
	}
	opts := sdsio.DefaultCSVOptions()
	opts.Header = header
	opts.Threads = ctx.Config.Threads()
	switch {
	case kind == "frame":
		f, err := sdsio.ReadFrameCSV(path, nil, opts)
		if err != nil {
			return err
		}
		ctx.Set(i.outs[0], runtime.NewFrameObject(f))
	case format == "binary":
		m, err := sdsio.ReadMatrixBinary(path)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], m)
	case format == "libsvm":
		x, _, err := sdsio.ReadMatrixLibSVM(path, 0)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], x)
	default:
		m, err := sdsio.ReadMatrixCSV(path, opts)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], m)
	}
	// lineage leaf for external inputs
	ctx.Lineage.Set(i.outs[0], lineage.NewCreation("read", path))
	return nil
}

// WriteInst writes a matrix or frame to a file (opcode "write").
type WriteInst struct {
	base
	In     Operand
	Path   Operand
	Format Operand
}

// NewWrite creates a write instruction.
func NewWrite(in, path, format Operand) *WriteInst {
	inst := &WriteInst{In: in, Path: path, Format: format}
	inst.base = newBase("write", nil, "", in, path, format)
	return inst
}

// Execute implements runtime.Instruction.
func (i *WriteInst) Execute(ctx *runtime.Context) error {
	path, err := i.Path.StringValue(ctx)
	if err != nil {
		return err
	}
	format, _ := i.Format.StringValue(ctx)
	if format == "" {
		if strings.ToLower(filepath.Ext(path)) == ".bin" {
			format = "binary"
		} else {
			format = "csv"
		}
	}
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	switch v := d.(type) {
	case *runtime.MatrixObject, *runtime.BlockedMatrixObject,
		*runtime.CompressedMatrixObject, *runtime.TransposedCompressedObject:
		// sinks acquire local matrices, lazily collect blocked ones and
		// transparently decompress compressed ones
		blk, err := i.In.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		if format == "binary" {
			return sdsio.WriteMatrixBinary(path, blk, 1024)
		}
		return sdsio.WriteMatrixCSV(path, blk, sdsio.DefaultCSVOptions())
	case *runtime.FrameObject:
		opts := sdsio.DefaultCSVOptions()
		opts.Header = true
		return sdsio.WriteFrameCSV(path, v.Frame, opts)
	case *runtime.Scalar:
		m := matrix.NewDense(1, 1)
		m.Set(0, 0, v.Float64())
		return sdsio.WriteMatrixCSV(path, m, sdsio.DefaultCSVOptions())
	default:
		return fmt.Errorf("instructions: write unsupported for %s", d.DataType())
	}
}
