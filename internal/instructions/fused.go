package instructions

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

// MMChainInst computes the fused matrix-multiply chain t(X) %*% (X %*% v)
// (opcode "mmchain"), optionally weighted as t(X) %*% (w * (X %*% v)), in a
// single pass over X without materializing the transpose or the m x 1
// intermediate.
type MMChainInst struct {
	base
	X, V, W  Operand
	Weighted bool
}

// NewMMChain creates a fused mmchain instruction; pass weighted=false and a
// zero W operand for the unweighted chain.
func NewMMChain(out string, x, v, w Operand, weighted bool) *MMChainInst {
	inst := &MMChainInst{X: x, V: v, W: w, Weighted: weighted}
	if weighted {
		inst.base = newBase("mmchain", []string{out}, "xtwxv", x, v, w)
	} else {
		inst.base = newBase("mmchain", []string{out}, "xtxv", x, v)
	}
	return inst
}

// Execute implements runtime.Instruction.
func (i *MMChainInst) Execute(ctx *runtime.Context) error {
	vb, err := i.V.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	var wb *matrix.MatrixBlock
	if i.Weighted {
		if wb, err = i.W.MatrixBlockFor(ctx, i.opcode); err != nil {
			return err
		}
	}
	// the chain over a compressed X runs both passes directly on the column
	// groups — the hot gradient step of iterative algorithms never
	// decompresses
	if xd, err := i.X.Resolve(ctx); err == nil {
		if co, ok := resolveCompressed(xd); ok {
			cm, err := co.Compressed()
			if err != nil {
				return err
			}
			res, err := cm.MMChain(vb, wb, ctx.Config.Threads())
			if err != nil {
				return fmt.Errorf("instructions: compressed mmchain: %w", err)
			}
			ctx.CountCompressedOp()
			ctx.CountMMChain()
			ctx.SetMatrix(i.outs[0], res)
			return nil
		}
	}
	xb, err := i.X.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	res, err := matrix.MMChain(xb, vb, wb, ctx.Config.Threads())
	if err != nil {
		return fmt.Errorf("instructions: mmchain: %w", err)
	}
	ctx.CountMMChain()
	ctx.SetMatrix(i.outs[0], res)
	return nil
}

// FusedAggInst evaluates a fused cellwise-aggregate pipeline (opcode
// "fagg_<agg>"): the cell program runs once per cell and streams directly
// into the aggregate, with no full-size intermediate. The program signature
// is part of the lineage data, so distinct pipelines over the same inputs
// never share a lineage entry.
type FusedAggInst struct {
	base
	Agg  matrix.AggKind
	Prog *matrix.CellProgram
	Args []Operand
}

// NewFusedAgg creates a fused aggregate instruction.
func NewFusedAgg(agg matrix.AggKind, out string, prog *matrix.CellProgram, args []Operand) *FusedAggInst {
	inst := &FusedAggInst{Agg: agg, Prog: prog, Args: args}
	inst.base = newBase("fagg_"+agg.String(), []string{out}, prog.Signature(), args...)
	return inst
}

// Execute implements runtime.Instruction.
func (i *FusedAggInst) Execute(ctx *runtime.Context) error {
	cargs := make([]matrix.CellArg, len(i.Args))
	for k, op := range i.Args {
		d, err := op.Resolve(ctx)
		if err != nil {
			return err
		}
		if s, ok := d.(*runtime.Scalar); ok {
			cargs[k] = matrix.CellArg{Scalar: s.Float64()}
			continue
		}
		blk, err := op.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		cargs[k] = matrix.CellArg{Mat: blk}
	}
	res, err := matrix.FusedAgg(i.Prog, i.Agg, cargs, ctx.Config.Threads())
	if err != nil {
		return fmt.Errorf("instructions: %s: %w", i.opcode, err)
	}
	ctx.CountFusedAgg()
	switch i.Agg {
	case matrix.AggSum, matrix.AggMin, matrix.AggMax:
		ctx.Set(i.outs[0], runtime.NewDouble(res.Get(0, 0)))
	default:
		ctx.SetMatrix(i.outs[0], res)
	}
	return nil
}
