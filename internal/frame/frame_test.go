package frame

import (
	"math"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

func sampleFrame(t *testing.T) *FrameBlock {
	t.Helper()
	schema := types.Schema{types.String, types.FP64, types.INT64, types.Boolean}
	f := NewFrame(schema, 4)
	if err := f.SetColumnNames([]string{"city", "temp", "count", "flag"}); err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"graz", "12.5", "3", "true"},
		{"vienna", "15.0", "7", "false"},
		{"graz", "11.0", "2", "true"},
		{"linz", "9.5", "5", "false"},
	}
	for r, row := range rows {
		for c, v := range row {
			if err := f.SetString(r, c, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return f
}

func TestFrameBasics(t *testing.T) {
	f := sampleFrame(t)
	if f.NumRows() != 4 || f.NumCols() != 4 {
		t.Fatalf("dims %dx%d", f.NumRows(), f.NumCols())
	}
	if got, _ := f.GetString(0, 0); got != "graz" {
		t.Errorf("GetString = %q", got)
	}
	if got, _ := f.GetNumeric(1, 1); got != 15.0 {
		t.Errorf("GetNumeric = %v", got)
	}
	if got, _ := f.GetNumeric(0, 3); got != 1 {
		t.Errorf("bool numeric = %v", got)
	}
	if got, _ := f.GetString(1, 3); got != "false" {
		t.Errorf("bool string = %q", got)
	}
	if got, _ := f.GetString(0, 2); got != "3" {
		t.Errorf("int string = %q", got)
	}
	if f.ColumnIndex("count") != 2 || f.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if _, err := f.GetString(9, 0); err == nil {
		t.Error("expected out of bounds error")
	}
	if _, err := f.GetNumeric(0, 0); err == nil {
		t.Error("expected parse error for string city")
	}
	if err := f.SetString(0, 1, "notanumber"); err == nil {
		t.Error("expected parse error")
	}
	if err := f.SetString(0, 3, "maybe"); err == nil {
		t.Error("expected boolean parse error")
	}
	if err := f.SetColumnNames([]string{"a"}); err == nil {
		t.Error("expected name length error")
	}
}

func TestFrameSetNumericCoercion(t *testing.T) {
	f := sampleFrame(t)
	if err := f.SetNumeric(0, 2, 9.7); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.GetNumeric(0, 2); v != 9 {
		t.Errorf("int coercion = %v", v)
	}
	if err := f.SetNumeric(0, 3, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.GetNumeric(0, 3); v != 1 {
		t.Errorf("bool coercion = %v", v)
	}
	if err := f.SetNumeric(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if s, _ := f.GetString(0, 0); s != "5" {
		t.Errorf("string col numeric set = %q", s)
	}
}

func TestFrameCopySliceSelect(t *testing.T) {
	f := sampleFrame(t)
	cp := f.Copy()
	_ = cp.SetString(0, 0, "salzburg")
	if s, _ := f.GetString(0, 0); s != "graz" {
		t.Error("copy not independent")
	}
	sl, err := f.SliceRows(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sl.NumRows() != 2 {
		t.Errorf("slice rows = %d", sl.NumRows())
	}
	if s, _ := sl.GetString(0, 0); s != "vienna" {
		t.Errorf("slice content = %q", s)
	}
	if _, err := f.SliceRows(0, 9); err == nil {
		t.Error("expected out of bounds error")
	}
	sel, err := f.SelectColumns([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumCols() != 2 || sel.ColumnNames()[0] != "temp" {
		t.Errorf("select cols = %v", sel.ColumnNames())
	}
	if _, err := f.SelectColumns([]int{9}); err == nil {
		t.Error("expected out of bounds error")
	}
}

func TestFrameMatrixConversion(t *testing.T) {
	schema := types.Schema{types.FP64, types.INT64}
	f := NewFrame(schema, 2)
	_ = f.SetNumeric(0, 0, 1.5)
	_ = f.SetNumeric(0, 1, 2)
	_ = f.SetNumeric(1, 0, 3.5)
	_ = f.SetNumeric(1, 1, 4)
	m, err := f.ToMatrix()
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.FromRows([][]float64{{1.5, 2}, {3.5, 4}})
	if !m.Equals(want, 0) {
		t.Errorf("ToMatrix = %v", m)
	}
	back := FromMatrix(m)
	m2, err := back.ToMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Equals(want, 0) {
		t.Error("FromMatrix/ToMatrix roundtrip failed")
	}
	// frame with non-numeric strings cannot convert
	bad := sampleFrame(t)
	if _, err := bad.ToMatrix(); err == nil {
		t.Error("expected conversion error")
	}
}

func TestEncodeRecode(t *testing.T) {
	f := sampleFrame(t)
	x, enc, err := Encode(f, TransformSpec{Recode: []string{"city"}})
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 4 || x.Cols() != 4 {
		t.Fatalf("encoded dims %dx%d", x.Rows(), x.Cols())
	}
	// codes assigned in sorted order: graz=1, linz=2, vienna=3
	if x.Get(0, 0) != 1 || x.Get(1, 0) != 3 || x.Get(3, 0) != 2 {
		t.Errorf("recode codes: %v %v %v", x.Get(0, 0), x.Get(1, 0), x.Get(3, 0))
	}
	// numeric passthrough
	if x.Get(1, 1) != 15.0 || x.Get(2, 2) != 2 {
		t.Error("passthrough columns wrong")
	}
	labels, err := enc.DecodeLabels("city", matrix.FromRows([][]float64{{1}, {3}}))
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != "graz" || labels[1] != "vienna" {
		t.Errorf("decoded labels = %v", labels)
	}
	if _, err := enc.DecodeLabels("temp", x); err == nil {
		t.Error("expected error decoding non-recoded column")
	}
}

func TestEncodeDummyCode(t *testing.T) {
	f := sampleFrame(t)
	x, enc, err := Encode(f, TransformSpec{DummyCode: []string{"city"}})
	if err != nil {
		t.Fatal(err)
	}
	if enc.OutputColumns() != 6 { // 3 dummy + 3 passthrough
		t.Fatalf("output columns = %d", enc.OutputColumns())
	}
	if x.Cols() != 6 {
		t.Fatalf("encoded cols = %d", x.Cols())
	}
	// row 0 is graz -> one-hot position 0
	if x.Get(0, 0) != 1 || x.Get(0, 1) != 0 || x.Get(0, 2) != 0 {
		t.Errorf("dummy row 0 = %v %v %v", x.Get(0, 0), x.Get(0, 1), x.Get(0, 2))
	}
	// row 1 is vienna -> one-hot position 2
	if x.Get(1, 2) != 1 {
		t.Error("dummy row 1 wrong")
	}
	// each dummy row sums to 1
	for r := 0; r < 4; r++ {
		s := x.Get(r, 0) + x.Get(r, 1) + x.Get(r, 2)
		if s != 1 {
			t.Errorf("row %d one-hot sum = %v", r, s)
		}
	}
}

func TestEncodeBinAndScale(t *testing.T) {
	schema := types.Schema{types.FP64, types.FP64}
	f := NewFrame(schema, 5)
	_ = f.SetColumnNames([]string{"a", "b"})
	vals := []float64{0, 2.5, 5, 7.5, 10}
	for r, v := range vals {
		_ = f.SetNumeric(r, 0, v)
		_ = f.SetNumeric(r, 1, v)
	}
	x, _, err := Encode(f, TransformSpec{Bin: map[string]int{"a": 2}, Scale: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	// equi-width bins over [0,10] with 2 bins: 0..5 -> 1, >5 -> 2 (max clamps to 2)
	wantBins := []float64{1, 1, 2, 2, 2}
	for r, w := range wantBins {
		if x.Get(r, 0) != w {
			t.Errorf("bin row %d = %v, want %v", r, x.Get(r, 0), w)
		}
	}
	// scaled column has mean ~0 and population sd ~1
	var mean float64
	for r := 0; r < 5; r++ {
		mean += x.Get(r, 1)
	}
	mean /= 5
	if math.Abs(mean) > 1e-12 {
		t.Errorf("scaled mean = %v", mean)
	}
	var va float64
	for r := 0; r < 5; r++ {
		va += x.Get(r, 1) * x.Get(r, 1)
	}
	va /= 5
	if math.Abs(va-1) > 1e-9 {
		t.Errorf("scaled variance = %v", va)
	}
}

func TestEncodeImpute(t *testing.T) {
	schema := types.Schema{types.String}
	f := NewFrame(schema, 4)
	_ = f.SetColumnNames([]string{"v"})
	_ = f.SetString(0, 0, "2")
	_ = f.SetString(1, 0, "")
	_ = f.SetString(2, 0, "4")
	_ = f.SetString(3, 0, "NA")
	x, _, err := Encode(f, TransformSpec{Impute: map[string]string{"v": "mean"}})
	if err != nil {
		t.Fatal(err)
	}
	if x.Get(1, 0) != 3 || x.Get(3, 0) != 3 {
		t.Errorf("imputed values = %v %v, want 3", x.Get(1, 0), x.Get(3, 0))
	}
	// median and mode
	_, _, err = Encode(f, TransformSpec{Impute: map[string]string{"v": "median"}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Encode(f, TransformSpec{Impute: map[string]string{"v": "mode"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Encode(f, TransformSpec{Impute: map[string]string{"v": "magic"}}); err == nil {
		t.Error("expected unknown method error")
	}
}

func TestEncoderApplyToNewData(t *testing.T) {
	train := sampleFrame(t)
	_, enc, err := Encode(train, TransformSpec{DummyCode: []string{"city"}, Scale: []string{"temp"}})
	if err != nil {
		t.Fatal(err)
	}
	// new data with an unseen category
	test := NewFrame(train.Schema(), 2)
	_ = test.SetColumnNames(train.ColumnNames())
	_ = test.SetString(0, 0, "graz")
	_ = test.SetString(0, 1, "12.5")
	_ = test.SetString(0, 2, "1")
	_ = test.SetString(0, 3, "true")
	_ = test.SetString(1, 0, "paris") // unseen
	_ = test.SetString(1, 1, "20")
	_ = test.SetString(1, 2, "2")
	_ = test.SetString(1, 3, "false")
	x, err := enc.Apply(test)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols() != enc.OutputColumns() {
		t.Fatalf("apply cols = %d", x.Cols())
	}
	// unseen category produces an all-zero one-hot block
	if x.Get(1, 0) != 0 || x.Get(1, 1) != 0 || x.Get(1, 2) != 0 {
		t.Error("unseen category should encode to zeros")
	}
	// mismatched schema rejected
	bad := NewFrame(types.Schema{types.FP64}, 1)
	if _, err := enc.Apply(bad); err == nil {
		t.Error("expected column count mismatch error")
	}
}

func TestEncodeErrors(t *testing.T) {
	f := sampleFrame(t)
	if _, _, err := Encode(f, TransformSpec{Recode: []string{"nope"}}); err == nil {
		t.Error("expected missing recode column error")
	}
	if _, _, err := Encode(f, TransformSpec{Bin: map[string]int{"nope": 3}}); err == nil {
		t.Error("expected missing bin column error")
	}
	if _, _, err := Encode(f, TransformSpec{Bin: map[string]int{"temp": 0}}); err == nil {
		t.Error("expected invalid bin count error")
	}
	if _, _, err := Encode(f, TransformSpec{Scale: []string{"nope"}}); err == nil {
		t.Error("expected missing scale column error")
	}
	if _, _, err := Encode(f, TransformSpec{Impute: map[string]string{"nope": "mean"}}); err == nil {
		t.Error("expected missing impute column error")
	}
}

func TestMetaFrame(t *testing.T) {
	f := sampleFrame(t)
	_, enc, err := Encode(f, TransformSpec{Recode: []string{"city"}})
	if err != nil {
		t.Fatal(err)
	}
	meta := enc.MetaFrame()
	if meta.NumRows() != 3 {
		t.Fatalf("meta rows = %d", meta.NumRows())
	}
	s, _ := meta.GetString(0, 0)
	if s != "graz·1" {
		t.Errorf("meta cell = %q", s)
	}
}
