package frame

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

// TransformSpec describes a feature transformation pipeline over frame
// columns, mirroring the JSON spec accepted by SystemDS' transformencode.
// Columns are addressed by name; columns not mentioned are passed through
// as-is (and must be numeric).
type TransformSpec struct {
	Recode    []string          // categorical -> integer codes
	DummyCode []string          // categorical -> one-hot columns (implies recode)
	Bin       map[string]int    // numeric -> equi-width bin ids with the given number of bins
	Impute    map[string]string // column -> "mean", "median" or "mode"
	Scale     []string          // numeric -> z-score standardization
}

// Encoder is the trained state of a transformation pipeline: it can be
// applied to new frames with the same schema (transformapply) and is itself
// representable as metadata, keeping the system stateless (Section 3.2).
type Encoder struct {
	spec        TransformSpec
	colNames    []string
	recodeMap   map[string]map[string]int // column -> value -> 1-based code
	binMins     map[string]float64
	binWidths   map[string]float64
	binCount    map[string]int
	imputeVal   map[string]float64
	scaleMu     map[string]float64
	scaleSd     map[string]float64
	numDistinct map[string]int
}

// Encode fits the transformation spec on the given frame and returns the
// encoded matrix together with the trained encoder (DML:
// [X, M] = transformencode(target=F, spec=S)).
func Encode(f *FrameBlock, spec TransformSpec) (*matrix.MatrixBlock, *Encoder, error) {
	enc := &Encoder{
		spec:        spec,
		colNames:    f.ColumnNames(),
		recodeMap:   map[string]map[string]int{},
		binMins:     map[string]float64{},
		binWidths:   map[string]float64{},
		binCount:    map[string]int{},
		imputeVal:   map[string]float64{},
		scaleMu:     map[string]float64{},
		scaleSd:     map[string]float64{},
		numDistinct: map[string]int{},
	}
	if err := enc.fit(f); err != nil {
		return nil, nil, err
	}
	m, err := enc.Apply(f)
	if err != nil {
		return nil, nil, err
	}
	return m, enc, nil
}

func (e *Encoder) fit(f *FrameBlock) error {
	// recode maps (dummycode implies recode)
	recodeCols := map[string]bool{}
	for _, c := range e.spec.Recode {
		recodeCols[c] = true
	}
	for _, c := range e.spec.DummyCode {
		recodeCols[c] = true
	}
	for name := range recodeCols {
		ci := f.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("frame: recode column %q not found", name)
		}
		distinct := map[string]bool{}
		for r := 0; r < f.NumRows(); r++ {
			s, err := f.GetString(r, ci)
			if err != nil {
				return err
			}
			if s != "" {
				distinct[s] = true
			}
		}
		values := make([]string, 0, len(distinct))
		for v := range distinct {
			values = append(values, v)
		}
		sort.Strings(values)
		codes := map[string]int{}
		for i, v := range values {
			codes[v] = i + 1
		}
		e.recodeMap[name] = codes
		e.numDistinct[name] = len(values)
	}
	// imputation values
	for name, method := range e.spec.Impute {
		ci := f.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("frame: impute column %q not found", name)
		}
		vals := make([]float64, 0, f.NumRows())
		for r := 0; r < f.NumRows(); r++ {
			s, _ := f.GetString(r, ci)
			if s == "" || s == "NA" || s == "NaN" {
				continue
			}
			v, err := f.GetNumeric(r, ci)
			if err != nil || math.IsNaN(v) {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			e.imputeVal[name] = 0
			continue
		}
		switch method {
		case "mean":
			var s float64
			for _, v := range vals {
				s += v
			}
			e.imputeVal[name] = s / float64(len(vals))
		case "median":
			sort.Float64s(vals)
			e.imputeVal[name] = vals[len(vals)/2]
		case "mode":
			counts := map[float64]int{}
			best, bestN := vals[0], 0
			for _, v := range vals {
				counts[v]++
				if counts[v] > bestN {
					best, bestN = v, counts[v]
				}
			}
			e.imputeVal[name] = best
		default:
			return fmt.Errorf("frame: unknown impute method %q", method)
		}
	}
	// binning parameters (equi-width)
	for name, nbins := range e.spec.Bin {
		ci := f.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("frame: bin column %q not found", name)
		}
		if nbins < 1 {
			return fmt.Errorf("frame: bin column %q needs at least 1 bin", name)
		}
		minV, maxV := math.Inf(1), math.Inf(-1)
		for r := 0; r < f.NumRows(); r++ {
			v, err := e.cellValue(f, r, ci, name)
			if err != nil {
				return err
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		e.binMins[name] = minV
		e.binCount[name] = nbins
		width := (maxV - minV) / float64(nbins)
		if width == 0 {
			width = 1
		}
		e.binWidths[name] = width
	}
	// scaling parameters
	for _, name := range e.spec.Scale {
		ci := f.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("frame: scale column %q not found", name)
		}
		var sum, sumsq float64
		n := float64(f.NumRows())
		for r := 0; r < f.NumRows(); r++ {
			v, err := e.cellValue(f, r, ci, name)
			if err != nil {
				return err
			}
			sum += v
			sumsq += v * v
		}
		mu := sum / n
		va := sumsq/n - mu*mu
		if va < 0 {
			va = 0
		}
		sd := math.Sqrt(va)
		if sd == 0 {
			sd = 1
		}
		e.scaleMu[name] = mu
		e.scaleSd[name] = sd
	}
	return nil
}

// cellValue reads a cell applying imputation for missing values.
func (e *Encoder) cellValue(f *FrameBlock, r, ci int, name string) (float64, error) {
	s, err := f.GetString(r, ci)
	if err != nil {
		return 0, err
	}
	if s == "" || s == "NA" || s == "NaN" {
		if v, ok := e.imputeVal[name]; ok {
			return v, nil
		}
		return 0, nil
	}
	v, err := f.GetNumeric(r, ci)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) {
		if iv, ok := e.imputeVal[name]; ok {
			return iv, nil
		}
		return 0, nil
	}
	return v, nil
}

// OutputColumns returns the number of matrix columns the encoder produces.
func (e *Encoder) OutputColumns() int {
	total := 0
	dummy := map[string]bool{}
	for _, c := range e.spec.DummyCode {
		dummy[c] = true
	}
	for _, name := range e.colNames {
		if dummy[name] {
			total += e.numDistinct[name]
		} else {
			total++
		}
	}
	return total
}

// Apply encodes a frame with the trained encoder (DML transformapply).
func (e *Encoder) Apply(f *FrameBlock) (*matrix.MatrixBlock, error) {
	if f.NumCols() != len(e.colNames) {
		return nil, fmt.Errorf("frame: encoder trained on %d columns, frame has %d", len(e.colNames), f.NumCols())
	}
	dummy := map[string]bool{}
	for _, c := range e.spec.DummyCode {
		dummy[c] = true
	}
	recode := map[string]bool{}
	for _, c := range e.spec.Recode {
		recode[c] = true
	}
	scale := map[string]bool{}
	for _, c := range e.spec.Scale {
		scale[c] = true
	}
	out := matrix.NewDense(f.NumRows(), e.OutputColumns())
	for r := 0; r < f.NumRows(); r++ {
		colOut := 0
		for ci, name := range e.colNames {
			switch {
			case dummy[name]:
				code, err := e.recodeCell(f, r, ci, name)
				if err != nil {
					return nil, err
				}
				if code >= 1 && code <= e.numDistinct[name] {
					out.Set(r, colOut+code-1, 1)
				}
				colOut += e.numDistinct[name]
			case recode[name]:
				code, err := e.recodeCell(f, r, ci, name)
				if err != nil {
					return nil, err
				}
				out.Set(r, colOut, float64(code))
				colOut++
			default:
				v, err := e.cellValue(f, r, ci, name)
				if err != nil {
					return nil, err
				}
				if nb, ok := e.binCount[name]; ok {
					bin := int((v-e.binMins[name])/e.binWidths[name]) + 1
					if bin < 1 {
						bin = 1
					}
					if bin > nb {
						bin = nb
					}
					v = float64(bin)
				}
				if scale[name] {
					v = (v - e.scaleMu[name]) / e.scaleSd[name]
				}
				out.Set(r, colOut, v)
				colOut++
			}
		}
	}
	return out, nil
}

func (e *Encoder) recodeCell(f *FrameBlock, r, ci int, name string) (int, error) {
	s, err := f.GetString(r, ci)
	if err != nil {
		return 0, err
	}
	codes := e.recodeMap[name]
	code, ok := codes[s]
	if !ok {
		return 0, nil // unseen category encodes to 0 (all-zero dummy row)
	}
	return code, nil
}

// MetaFrame renders the encoder's recode maps as a frame of
// "value·code" strings per column, mirroring SystemDS' transform
// metadata frame so pre-trained transformations can be shipped as data
// (Section 3.2: "consuming pre-trained models and rules as tensors").
func (e *Encoder) MetaFrame() *FrameBlock {
	maxRows := 0
	for _, m := range e.recodeMap {
		if len(m) > maxRows {
			maxRows = len(m)
		}
	}
	schema := types.UniformSchema(types.String, len(e.colNames))
	meta := NewFrame(schema, maxRows)
	_ = meta.SetColumnNames(e.colNames)
	for ci, name := range e.colNames {
		codes, ok := e.recodeMap[name]
		if !ok {
			continue
		}
		values := make([]string, 0, len(codes))
		for v := range codes {
			values = append(values, v)
		}
		sort.Strings(values)
		for i, v := range values {
			_ = meta.SetString(i, ci, v+"·"+strconv.Itoa(codes[v]))
		}
	}
	return meta
}

// DecodeLabels converts 1-based recode codes in a column vector back to their
// original string values for the given recoded column.
func (e *Encoder) DecodeLabels(col string, codes *matrix.MatrixBlock) ([]string, error) {
	m, ok := e.recodeMap[col]
	if !ok {
		return nil, fmt.Errorf("frame: column %q was not recoded", col)
	}
	inverse := make(map[int]string, len(m))
	for v, c := range m {
		inverse[c] = v
	}
	out := make([]string, codes.Rows())
	for r := 0; r < codes.Rows(); r++ {
		out[r] = inverse[int(codes.Get(r, 0))]
	}
	return out, nil
}
