// Package frame implements FrameBlock, a two-dimensional table with a
// per-column schema (lesson L4 of the SystemDS paper), and the feature
// transformation encoders (recode, dummy-coding, binning, imputation,
// scaling) used to turn heterogeneous raw data into numeric matrices for ML
// training. It corresponds to SystemDS' frame support and the
// transformencode / transformapply builtins.
package frame

import (
	"fmt"
	"math"
	"strconv"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

// FrameBlock is a column-oriented 2D table with a schema: each column has a
// value type and an optional name. String columns hold raw strings; numeric
// columns hold float64 values.
type FrameBlock struct {
	schema   types.Schema
	colNames []string
	numRows  int
	strCols  map[int][]string
	numCols  map[int][]float64
}

// NewFrame creates an empty frame with the given schema and number of rows.
func NewFrame(schema types.Schema, rows int) *FrameBlock {
	f := &FrameBlock{
		schema:   append(types.Schema(nil), schema...),
		colNames: make([]string, len(schema)),
		numRows:  rows,
		strCols:  map[int][]string{},
		numCols:  map[int][]float64{},
	}
	for i, vt := range schema {
		f.colNames[i] = fmt.Sprintf("C%d", i+1)
		if vt == types.String {
			f.strCols[i] = make([]string, rows)
		} else {
			f.numCols[i] = make([]float64, rows)
		}
	}
	return f
}

// NumRows returns the number of rows.
func (f *FrameBlock) NumRows() int { return f.numRows }

// NumCols returns the number of columns.
func (f *FrameBlock) NumCols() int { return len(f.schema) }

// Schema returns a copy of the frame's schema.
func (f *FrameBlock) Schema() types.Schema { return append(types.Schema(nil), f.schema...) }

// ColumnNames returns a copy of the column names.
func (f *FrameBlock) ColumnNames() []string { return append([]string(nil), f.colNames...) }

// SetColumnNames assigns column names; the length must match the schema.
func (f *FrameBlock) SetColumnNames(names []string) error {
	if len(names) != len(f.schema) {
		return fmt.Errorf("frame: %d names for %d columns", len(names), len(f.schema))
	}
	f.colNames = append([]string(nil), names...)
	return nil
}

// ColumnIndex returns the index of the named column, or -1.
func (f *FrameBlock) ColumnIndex(name string) int {
	for i, n := range f.colNames {
		if n == name {
			return i
		}
	}
	return -1
}

func (f *FrameBlock) check(r, c int) error {
	if r < 0 || r >= f.numRows || c < 0 || c >= len(f.schema) {
		return fmt.Errorf("frame: index (%d,%d) out of bounds %dx%d", r, c, f.numRows, len(f.schema))
	}
	return nil
}

// GetString returns the cell at (r, c) rendered as a string.
func (f *FrameBlock) GetString(r, c int) (string, error) {
	if err := f.check(r, c); err != nil {
		return "", err
	}
	if f.schema[c] == types.String {
		return f.strCols[c][r], nil
	}
	v := f.numCols[c][r]
	switch f.schema[c] {
	case types.INT64, types.INT32:
		return strconv.FormatInt(int64(v), 10), nil
	case types.Boolean:
		if v != 0 {
			return "true", nil
		}
		return "false", nil
	default:
		return strconv.FormatFloat(v, 'g', -1, 64), nil
	}
}

// GetNumeric returns the numeric value of the cell at (r, c). String cells
// are parsed; unparseable strings yield an error.
func (f *FrameBlock) GetNumeric(r, c int) (float64, error) {
	if err := f.check(r, c); err != nil {
		return 0, err
	}
	if f.schema[c] == types.String {
		s := f.strCols[c][r]
		if s == "" {
			return 0, nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("frame: cell (%d,%d) %q is not numeric", r, c, s)
		}
		return v, nil
	}
	return f.numCols[c][r], nil
}

// SetString assigns a string to the cell at (r, c); numeric columns parse it.
func (f *FrameBlock) SetString(r, c int, s string) error {
	if err := f.check(r, c); err != nil {
		return err
	}
	if f.schema[c] == types.String {
		f.strCols[c][r] = s
		return nil
	}
	if s == "" || s == "NA" || s == "NaN" {
		// missing values in numeric columns are represented as NaN so that
		// downstream imputation (imputeByMean, transformencode impute) can
		// recognize and repair them
		f.numCols[c][r] = math.NaN()
		return nil
	}
	switch f.schema[c] {
	case types.Boolean:
		switch s {
		case "true", "TRUE", "True", "1":
			f.numCols[c][r] = 1
		case "false", "FALSE", "False", "0":
			f.numCols[c][r] = 0
		default:
			return fmt.Errorf("frame: cannot parse %q as boolean", s)
		}
		return nil
	default:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("frame: cannot parse %q as %s: %w", s, f.schema[c], err)
		}
		if f.schema[c] == types.INT64 || f.schema[c] == types.INT32 {
			v = float64(int64(v))
		}
		f.numCols[c][r] = v
		return nil
	}
}

// SetNumeric assigns a numeric value to the cell at (r, c).
func (f *FrameBlock) SetNumeric(r, c int, v float64) error {
	if err := f.check(r, c); err != nil {
		return err
	}
	if f.schema[c] == types.String {
		f.strCols[c][r] = strconv.FormatFloat(v, 'g', -1, 64)
		return nil
	}
	if f.schema[c] == types.INT64 || f.schema[c] == types.INT32 {
		v = float64(int64(v))
	}
	if f.schema[c] == types.Boolean && v != 0 {
		v = 1
	}
	f.numCols[c][r] = v
	return nil
}

// Copy returns a deep copy of the frame.
func (f *FrameBlock) Copy() *FrameBlock {
	cp := NewFrame(f.schema, f.numRows)
	copy(cp.colNames, f.colNames)
	for c, col := range f.strCols {
		copy(cp.strCols[c], col)
	}
	for c, col := range f.numCols {
		copy(cp.numCols[c], col)
	}
	return cp
}

// SliceRows returns the frame restricted to rows [rl, ru).
func (f *FrameBlock) SliceRows(rl, ru int) (*FrameBlock, error) {
	if rl < 0 || ru > f.numRows || rl > ru {
		return nil, fmt.Errorf("frame: row slice [%d,%d) out of bounds for %d rows", rl, ru, f.numRows)
	}
	out := NewFrame(f.schema, ru-rl)
	copy(out.colNames, f.colNames)
	for c := range f.schema {
		for r := rl; r < ru; r++ {
			s, _ := f.GetString(r, c)
			if err := out.SetString(r-rl, c, s); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SelectColumns returns a new frame containing only the given column indexes.
func (f *FrameBlock) SelectColumns(cols []int) (*FrameBlock, error) {
	schema := make(types.Schema, len(cols))
	names := make([]string, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(f.schema) {
			return nil, fmt.Errorf("frame: column %d out of bounds", c)
		}
		schema[i] = f.schema[c]
		names[i] = f.colNames[c]
	}
	out := NewFrame(schema, f.numRows)
	_ = out.SetColumnNames(names)
	for i, c := range cols {
		for r := 0; r < f.numRows; r++ {
			s, _ := f.GetString(r, c)
			if err := out.SetString(r, i, s); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ToMatrix converts the frame to a numeric matrix. All columns must be
// numeric or hold parseable numeric strings.
func (f *FrameBlock) ToMatrix() (*matrix.MatrixBlock, error) {
	out := matrix.NewDense(f.numRows, len(f.schema))
	for r := 0; r < f.numRows; r++ {
		for c := 0; c < len(f.schema); c++ {
			v, err := f.GetNumeric(r, c)
			if err != nil {
				return nil, err
			}
			out.Set(r, c, v)
		}
	}
	return out, nil
}

// FromMatrix builds an all-FP64 frame from a matrix.
func FromMatrix(m *matrix.MatrixBlock) *FrameBlock {
	f := NewFrame(types.UniformSchema(types.FP64, m.Cols()), m.Rows())
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			_ = f.SetNumeric(r, c, m.Get(r, c))
		}
	}
	return f
}

// String renders frame metadata.
func (f *FrameBlock) String() string {
	return fmt.Sprintf("FrameBlock[%dx%d, schema=%s]", f.numRows, len(f.schema), f.schema)
}
