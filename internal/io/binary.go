package io

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/systemds/systemds-go/internal/matrix"
)

// binaryMagic identifies SystemDS-Go binary blocked matrix files.
const binaryMagic uint32 = 0x53445342 // "SDSB"

// WriteMatrixBinary writes a matrix in the binary blocked format: a small
// header (magic, version, rows, cols, blocksize) followed by the blocks in
// row-major block order, each with its own nnz and dense payload. The format
// corresponds to SystemDS' binary block format used between jobs.
func WriteMatrixBinary(path string, m *matrix.MatrixBlock, blocksize int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("io: create %s: %w", path, err)
	}
	defer f.Close()
	return WriteMatrixBinaryTo(f, m, blocksize)
}

// WriteMatrixBinaryTo writes the binary blocked format to an arbitrary
// writer (the persistent lineage store serializes cached intermediates into
// its spill files with it).
func WriteMatrixBinaryTo(dst io.Writer, m *matrix.MatrixBlock, blocksize int) error {
	if blocksize <= 0 {
		blocksize = 1024
	}
	w := bufio.NewWriterSize(dst, 1<<20)
	header := []uint64{uint64(binaryMagic), 1, uint64(m.Rows()), uint64(m.Cols()), uint64(blocksize)}
	for _, h := range header {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for r0 := 0; r0 < m.Rows() || r0 == 0; r0 += blocksize {
		if m.Rows() == 0 && r0 > 0 {
			break
		}
		r1 := r0 + blocksize
		if r1 > m.Rows() {
			r1 = m.Rows()
		}
		for c0 := 0; c0 < m.Cols() || c0 == 0; c0 += blocksize {
			if m.Cols() == 0 && c0 > 0 {
				break
			}
			c1 := c0 + blocksize
			if c1 > m.Cols() {
				c1 = m.Cols()
			}
			if r1 <= r0 || c1 <= c0 {
				continue
			}
			blk, err := matrix.Slice(m, r0, r1, c0, c1)
			if err != nil {
				return err
			}
			if err := writeBlock(w, blk); err != nil {
				return err
			}
		}
		if m.Rows() == 0 {
			break
		}
	}
	return w.Flush()
}

func writeBlock(w io.Writer, blk *matrix.MatrixBlock) error {
	meta := []uint64{uint64(blk.Rows()), uint64(blk.Cols()), uint64(blk.NNZ())}
	for _, v := range meta {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	vals := blk.DenseValues()
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// ReadMatrixBinary reads a matrix written by WriteMatrixBinary.
func ReadMatrixBinary(path string) (*matrix.MatrixBlock, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("io: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadMatrixBinaryFrom(f, path)
}

// ReadMatrixBinaryFrom reads the binary blocked format from an arbitrary
// reader; label names the source in error messages.
func ReadMatrixBinaryFrom(src io.Reader, label string) (*matrix.MatrixBlock, error) {
	path := label
	r := bufio.NewReaderSize(src, 1<<20)
	header := make([]uint64, 5)
	for i := range header {
		if err := binary.Read(r, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("io: %s: corrupt header: %w", path, err)
		}
	}
	if uint32(header[0]) != binaryMagic {
		return nil, fmt.Errorf("io: %s is not a SystemDS-Go binary matrix file", path)
	}
	rows, cols, blocksize := int(header[2]), int(header[3]), int(header[4])
	out := matrix.NewDense(rows, cols)
	for r0 := 0; r0 < rows; r0 += blocksize {
		r1 := r0 + blocksize
		if r1 > rows {
			r1 = rows
		}
		for c0 := 0; c0 < cols; c0 += blocksize {
			c1 := c0 + blocksize
			if c1 > cols {
				c1 = cols
			}
			blk, err := readBlock(r)
			if err != nil {
				return nil, err
			}
			if blk.Rows() != r1-r0 || blk.Cols() != c1-c0 {
				return nil, fmt.Errorf("io: %s: block size mismatch", path)
			}
			var werr error
			out2, werr := matrix.LeftIndex(out, blk, r0, r1, c0, c1)
			if werr != nil {
				return nil, werr
			}
			out = out2
		}
	}
	out.RecomputeNNZ()
	out.ExamineAndApplySparsity()
	return out, nil
}

func readBlock(r io.Reader) (*matrix.MatrixBlock, error) {
	meta := make([]uint64, 3)
	for i := range meta {
		if err := binary.Read(r, binary.LittleEndian, &meta[i]); err != nil {
			return nil, fmt.Errorf("io: corrupt block header: %w", err)
		}
	}
	rows, cols := int(meta[0]), int(meta[1])
	buf := make([]byte, 8*rows*cols)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("io: corrupt block payload: %w", err)
	}
	vals := make([]float64, rows*cols)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return matrix.NewDenseFromSlice(rows, cols, vals), nil
}

// ReadMatrixLibSVM reads a libsvm-formatted file ("label idx:val idx:val ...",
// 1-based indexes) and returns the feature matrix and label vector.
func ReadMatrixLibSVM(path string, numFeatures int) (x, y *matrix.MatrixBlock, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("io: read %s: %w", path, err)
	}
	return ParseLibSVM(data, numFeatures)
}

// ParseLibSVM parses libsvm bytes into a feature matrix and label vector.
// When numFeatures <= 0 the number of features is determined from the data.
func ParseLibSVM(data []byte, numFeatures int) (x, y *matrix.MatrixBlock, err error) {
	lines := splitLines(data)
	type entry struct {
		col int
		val float64
	}
	rows := make([][]entry, 0, len(lines))
	labels := make([]float64, 0, len(lines))
	maxCol := 0
	for ln, line := range lines {
		line = trimSpace(line)
		if line == "" {
			continue
		}
		fields := splitFields(line)
		if len(fields) == 0 {
			continue
		}
		var label float64
		if _, err := fmt.Sscanf(fields[0], "%g", &label); err != nil {
			return nil, nil, fmt.Errorf("io: libsvm line %d: bad label %q", ln+1, fields[0])
		}
		es := make([]entry, 0, len(fields)-1)
		for _, f := range fields[1:] {
			var idx int
			var val float64
			if _, err := fmt.Sscanf(f, "%d:%g", &idx, &val); err != nil {
				return nil, nil, fmt.Errorf("io: libsvm line %d: bad entry %q", ln+1, f)
			}
			if idx < 1 {
				return nil, nil, fmt.Errorf("io: libsvm line %d: index %d must be >= 1", ln+1, idx)
			}
			if idx > maxCol {
				maxCol = idx
			}
			es = append(es, entry{col: idx - 1, val: val})
		}
		rows = append(rows, es)
		labels = append(labels, label)
	}
	cols := numFeatures
	if cols <= 0 {
		cols = maxCol
	}
	b := matrix.NewBuilder(len(rows), cols)
	for r, es := range rows {
		for _, e := range es {
			if e.col < cols {
				b.Add(r, e.col, e.val)
			}
		}
	}
	x = b.Build()
	x.ExamineAndApplySparsity()
	y = matrix.NewDense(len(labels), 1)
	for i, l := range labels {
		y.Set(i, 0, l)
	}
	return x, y, nil
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\t') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\t' || s[end-1] == '\r') {
		end--
	}
	return s[start:end]
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}
