package io

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

func TestMatrixCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	m := matrix.RandUniform(50, 7, -5, 5, 1.0, 3)
	if err := WriteMatrixCSV(path, m, DefaultCSVOptions()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixCSV(path, DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(m, 1e-12) {
		t.Error("CSV round trip changed values")
	}
}

func TestMatrixCSVWithHeaderAndDelimiter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	opts := CSVOptions{Delimiter: ';', Header: true, Threads: 2}
	if err := WriteMatrixCSV(path, m, opts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixCSV(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(m, 0) {
		t.Errorf("round trip = %v", got)
	}
}

func TestParseMatrixCSVErrors(t *testing.T) {
	if _, err := ParseMatrixCSV([]byte("1,2\n3,abc\n"), DefaultCSVOptions()); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ParseMatrixCSV([]byte("1,2\n3\n"), DefaultCSVOptions()); err == nil {
		t.Error("expected column count error")
	}
	empty, err := ParseMatrixCSV([]byte(""), DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if empty.Rows() != 0 {
		t.Error("empty input should produce empty matrix")
	}
}

func TestParseMatrixCSVSparseOutput(t *testing.T) {
	// mostly-zero CSV should come back in sparse representation
	csv := "0,0,0,0,0,0,0,0,0,1\n0,0,0,0,0,0,0,0,0,0\n0,0,0,0,0,0,0,2,0,0\n"
	m, err := ParseMatrixCSV([]byte(csv), DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsSparse() {
		t.Error("expected sparse representation for mostly-zero data")
	}
	if m.NNZ() != 2 || m.Get(0, 9) != 1 || m.Get(2, 7) != 2 {
		t.Error("sparse CSV values wrong")
	}
}

func TestReadMatrixCSVMissingFile(t *testing.T) {
	if _, err := ReadMatrixCSV("/nonexistent/file.csv", DefaultCSVOptions()); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestFrameCSVRoundTripWithInference(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.csv")
	content := "city,temp,count,flag\ngraz,12.5,3,true\nvienna,15.0,7,false\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := CSVOptions{Delimiter: ',', Header: true}
	f, err := ReadFrameCSV(path, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 2 || f.NumCols() != 4 {
		t.Fatalf("dims %dx%d", f.NumRows(), f.NumCols())
	}
	schema := f.Schema()
	if schema[0] != types.String || schema[1] != types.FP64 || schema[2] != types.INT64 || schema[3] != types.Boolean {
		t.Errorf("inferred schema = %v", schema)
	}
	if f.ColumnNames()[0] != "city" {
		t.Errorf("names = %v", f.ColumnNames())
	}
	// write back and re-read
	out := filepath.Join(dir, "f2.csv")
	if err := WriteFrameCSV(out, f, opts); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadFrameCSV(out, f.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := f2.GetString(1, 0)
	if s != "vienna" {
		t.Errorf("round trip cell = %q", s)
	}
}

func TestParseFrameCSVSchemaMismatch(t *testing.T) {
	if _, err := ParseFrameCSV([]byte("1,2\n"), types.Schema{types.FP64}, DefaultCSVOptions()); err == nil {
		t.Error("expected schema mismatch error")
	}
	if _, err := ParseFrameCSV([]byte("1,2\n1\n"), nil, DefaultCSVOptions()); err == nil {
		t.Error("expected ragged row error")
	}
}

func TestMatrixBinaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.bin")
	m := matrix.RandUniform(200, 37, -10, 10, 1.0, 4)
	if err := WriteMatrixBinary(path, m, 64); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(m, 0) {
		t.Error("binary round trip changed values")
	}
}

func TestMatrixBinarySparseInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.bin")
	m := matrix.RandUniform(100, 50, 0, 1, 0.05, 5)
	if err := WriteMatrixBinary(path, m, 1024); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(m, 0) {
		t.Error("sparse binary round trip changed values")
	}
	if !got.IsSparse() {
		t.Error("re-read sparse matrix should be sparse")
	}
}

func TestReadMatrixBinaryErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(path, []byte("not a binary matrix"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMatrixBinary(path); err == nil {
		t.Error("expected corrupt header error")
	}
	if _, err := ReadMatrixBinary(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("expected missing file error")
	}
}

func TestLibSVMParse(t *testing.T) {
	data := []byte("1 1:0.5 3:2.0\n-1 2:1.5\n\n1 1:1 2:1 3:1\n")
	x, y, err := ParseLibSVM(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 3 || x.Cols() != 3 {
		t.Fatalf("dims %dx%d", x.Rows(), x.Cols())
	}
	if x.Get(0, 0) != 0.5 || x.Get(0, 2) != 2.0 || x.Get(1, 1) != 1.5 {
		t.Error("libsvm values wrong")
	}
	if y.Get(0, 0) != 1 || y.Get(1, 0) != -1 {
		t.Error("libsvm labels wrong")
	}
	// explicit feature count
	x2, _, err := ParseLibSVM(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	if x2.Cols() != 5 {
		t.Errorf("explicit cols = %d", x2.Cols())
	}
	if _, _, err := ParseLibSVM([]byte("1 0:5\n"), 0); err == nil {
		t.Error("expected error for 0-based index")
	}
	if _, _, err := ParseLibSVM([]byte("abc 1:5\n"), 0); err == nil {
		t.Error("expected error for bad label")
	}
	if _, _, err := ParseLibSVM([]byte("1 nonsense\n"), 0); err == nil {
		t.Error("expected error for bad entry")
	}
}

func TestGeneratedReaderDelimited(t *testing.T) {
	desc := FormatDescriptor{
		Kind:          "delimited",
		Delimiter:     "|",
		CommentPrefix: "#",
		HasHeader:     true,
		Quote:         `"`,
		MissingValues: []string{"?"},
		Columns: []FormatColumn{
			{Name: "id", Field: "0", Type: types.INT64},
			{Name: "value", Field: "2", Type: types.FP64},
			{Name: "label", Field: "1", Type: types.String},
		},
	}
	r, err := GenerateReader(desc)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("# sensor export v2\nid|label|value\n1|\"a|b\"|2.5\n2|c|?\n3|d|7.25\n")
	f, err := r.ReadFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 3 || f.NumCols() != 3 {
		t.Fatalf("dims %dx%d", f.NumRows(), f.NumCols())
	}
	if v, _ := f.GetNumeric(0, 0); v != 1 {
		t.Errorf("id = %v", v)
	}
	if s, _ := f.GetString(0, 2); s != "a|b" {
		t.Errorf("quoted field = %q", s)
	}
	if v, _ := f.GetNumeric(2, 1); v != 7.25 {
		t.Errorf("value = %v", v)
	}
	if v, _ := f.GetNumeric(1, 1); !math.IsNaN(v) { // missing value becomes NaN
		t.Errorf("missing value = %v, want NaN", v)
	}
}

func TestGeneratedReaderKeyValue(t *testing.T) {
	desc := FormatDescriptor{
		Kind:      "keyvalue",
		Delimiter: ";",
		Columns: []FormatColumn{
			{Name: "temp", Field: "temp", Type: types.FP64},
			{Name: "rpm", Field: "rpm", Type: types.FP64},
		},
	}
	r, err := GenerateReader(desc)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("temp:20.5;rpm:900\ntemp:21.0;rpm:950;extra:x\n")
	m, err := r.ReadMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	if m.Get(1, 1) != 950 {
		t.Errorf("rpm = %v", m.Get(1, 1))
	}
}

func TestGenerateReaderErrors(t *testing.T) {
	if _, err := GenerateReader(FormatDescriptor{}); err == nil {
		t.Error("expected error for no columns")
	}
	if _, err := GenerateReader(FormatDescriptor{Columns: []FormatColumn{{Name: "a", Field: "x"}}}); err == nil {
		t.Error("expected error for bad field index")
	}
	if _, err := GenerateReader(FormatDescriptor{Kind: "xml", Columns: []FormatColumn{{Name: "a", Field: "0"}}}); err == nil {
		t.Error("expected error for unknown kind")
	}
	if _, err := GenerateReader(FormatDescriptor{Kind: "keyvalue", Columns: []FormatColumn{{Name: "a", Field: ""}}}); err == nil {
		t.Error("expected error for missing key")
	}
}

func TestGeneratedReaderNonNumericToMatrix(t *testing.T) {
	desc := FormatDescriptor{Columns: []FormatColumn{{Name: "s", Field: "0", Type: types.String}}}
	r, err := GenerateReader(desc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMatrix([]byte("hello\n")); err == nil {
		t.Error("expected conversion error")
	}
}
