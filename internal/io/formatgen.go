package io

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/systemds/systemds-go/internal/frame"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

// FormatDescriptor is a high-level description of an external text data
// format from which a reader is generated (the substitution for SystemDS'
// generated I/O primitives, Section 3.2). It covers delimited formats with
// configurable delimiters, quotes, comment prefixes, column selection, and
// per-column value types, and simple key:value record formats.
type FormatDescriptor struct {
	// Kind is "delimited" (default) or "keyvalue".
	Kind string
	// Delimiter separates fields within a record (delimited kind).
	Delimiter string
	// RecordSeparator separates records; defaults to "\n".
	RecordSeparator string
	// Quote optionally wraps fields that contain the delimiter.
	Quote string
	// CommentPrefix marks lines to skip entirely.
	CommentPrefix string
	// HasHeader indicates the first record holds column names.
	HasHeader bool
	// Columns selects and types the output columns. For the delimited kind
	// Field is the 0-based source field index; for keyvalue it is the key.
	Columns []FormatColumn
	// MissingValues lists strings treated as missing (imputed as empty).
	MissingValues []string
}

// FormatColumn describes one output column of a generated reader.
type FormatColumn struct {
	Name  string
	Field string
	Type  types.ValueType
}

// Reader is a reader generated from a format descriptor. It converts raw
// bytes into a frame (and from there into matrices via transformencode).
type Reader struct {
	desc      FormatDescriptor
	fieldIdx  []int    // delimited: source field index per output column
	fieldKeys []string // keyvalue: key per output column
	schema    types.Schema
	names     []string
	missing   map[string]bool
}

// GenerateReader validates the descriptor and "generates" (builds) a reader
// for it. The returned reader is reusable across files of the same format.
func GenerateReader(desc FormatDescriptor) (*Reader, error) {
	if desc.Kind == "" {
		desc.Kind = "delimited"
	}
	if desc.Delimiter == "" {
		desc.Delimiter = ","
	}
	if desc.RecordSeparator == "" {
		desc.RecordSeparator = "\n"
	}
	if len(desc.Columns) == 0 {
		return nil, fmt.Errorf("io: format descriptor needs at least one column")
	}
	r := &Reader{desc: desc, missing: map[string]bool{}}
	for _, mv := range desc.MissingValues {
		r.missing[mv] = true
	}
	for _, col := range desc.Columns {
		r.names = append(r.names, col.Name)
		vt := col.Type
		if vt == types.Unknown {
			vt = types.String
		}
		r.schema = append(r.schema, vt)
		switch desc.Kind {
		case "delimited":
			idx, err := strconv.Atoi(col.Field)
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("io: column %q has invalid field index %q", col.Name, col.Field)
			}
			r.fieldIdx = append(r.fieldIdx, idx)
		case "keyvalue":
			if col.Field == "" {
				return nil, fmt.Errorf("io: column %q needs a key", col.Name)
			}
			r.fieldKeys = append(r.fieldKeys, col.Field)
		default:
			return nil, fmt.Errorf("io: unknown format kind %q", desc.Kind)
		}
	}
	return r, nil
}

// ReadFrame parses raw bytes into a frame according to the descriptor.
func (r *Reader) ReadFrame(data []byte) (*frame.FrameBlock, error) {
	records := strings.Split(strings.ReplaceAll(string(data), "\r\n", "\n"), r.desc.RecordSeparator)
	// filter comments and blanks
	filtered := records[:0]
	for _, rec := range records {
		trimmed := strings.TrimSpace(rec)
		if trimmed == "" {
			continue
		}
		if r.desc.CommentPrefix != "" && strings.HasPrefix(trimmed, r.desc.CommentPrefix) {
			continue
		}
		filtered = append(filtered, rec)
	}
	records = filtered
	if r.desc.HasHeader && len(records) > 0 {
		records = records[1:]
	}
	f := frame.NewFrame(r.schema, len(records))
	if err := f.SetColumnNames(r.names); err != nil {
		return nil, err
	}
	for i, rec := range records {
		var fields []string
		var kv map[string]string
		if r.desc.Kind == "delimited" {
			fields = r.splitRecord(rec)
		} else {
			kv = parseKeyValue(rec, r.desc.Delimiter)
		}
		for c := range r.schema {
			var raw string
			if r.desc.Kind == "delimited" {
				idx := r.fieldIdx[c]
				if idx < len(fields) {
					raw = strings.TrimSpace(fields[idx])
				}
			} else {
				raw = kv[r.fieldKeys[c]]
			}
			if r.missing[raw] {
				raw = ""
			}
			if err := f.SetString(i, c, raw); err != nil {
				return nil, fmt.Errorf("io: record %d column %q: %w", i+1, r.names[c], err)
			}
		}
	}
	return f, nil
}

// ReadMatrix parses raw bytes and converts the (numeric) result to a matrix.
func (r *Reader) ReadMatrix(data []byte) (*matrix.MatrixBlock, error) {
	f, err := r.ReadFrame(data)
	if err != nil {
		return nil, err
	}
	return f.ToMatrix()
}

func (r *Reader) splitRecord(rec string) []string {
	delim := r.desc.Delimiter
	quote := r.desc.Quote
	if quote == "" {
		return strings.Split(rec, delim)
	}
	var fields []string
	var cur strings.Builder
	inQuote := false
	i := 0
	for i < len(rec) {
		switch {
		case strings.HasPrefix(rec[i:], quote):
			inQuote = !inQuote
			i += len(quote)
		case !inQuote && strings.HasPrefix(rec[i:], delim):
			fields = append(fields, cur.String())
			cur.Reset()
			i += len(delim)
		default:
			cur.WriteByte(rec[i])
			i++
		}
	}
	fields = append(fields, cur.String())
	return fields
}

func parseKeyValue(rec, delim string) map[string]string {
	out := map[string]string{}
	for _, part := range strings.Split(rec, delim) {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) == 2 {
			out[strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1])
		}
	}
	return out
}
