// Package io implements the data ingestion and persistence layer of
// SystemDS-Go: multi-threaded CSV readers and writers for matrices and
// frames, a binary blocked format, libsvm support, and a format-descriptor
// driven reader that stands in for the paper's generated I/O primitives
// (Section 3.2).
package io

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"github.com/systemds/systemds-go/internal/frame"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

// CSVOptions configures CSV reading and writing.
type CSVOptions struct {
	Delimiter byte
	Header    bool
	Threads   int
}

// DefaultCSVOptions returns comma-delimited, headerless, multi-threaded
// options.
func DefaultCSVOptions() CSVOptions {
	return CSVOptions{Delimiter: ',', Header: false, Threads: 0}
}

// WriteMatrixCSV writes a matrix to a CSV file.
func WriteMatrixCSV(path string, m *matrix.MatrixBlock, opts CSVOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("io: create %s: %w", path, err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	delim := string(opts.Delimiter)
	if opts.Header {
		cols := make([]string, m.Cols())
		for c := range cols {
			cols[c] = fmt.Sprintf("C%d", c+1)
		}
		if _, err := w.WriteString(strings.Join(cols, delim) + "\n"); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, 32)
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			if c > 0 {
				if err := w.WriteByte(opts.Delimiter); err != nil {
					return err
				}
			}
			buf = strconv.AppendFloat(buf[:0], m.Get(r, c), 'g', -1, 64)
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}

// ReadMatrixCSV reads a numeric CSV file into a matrix using multiple parser
// goroutines: the file is split into row ranges after a sequential line
// index, and string-to-double parsing (the compute-intensive part noted in
// Section 4.2) happens in parallel.
func ReadMatrixCSV(path string, opts CSVOptions) (*matrix.MatrixBlock, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("io: read %s: %w", path, err)
	}
	return ParseMatrixCSV(data, opts)
}

// ParseMatrixCSV parses CSV bytes into a matrix (multi-threaded).
func ParseMatrixCSV(data []byte, opts CSVOptions) (*matrix.MatrixBlock, error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = matrix.DefaultParallelism()
	}
	lines := splitLines(data)
	if opts.Header && len(lines) > 0 {
		lines = lines[1:]
	}
	// drop trailing empty line
	for len(lines) > 0 && len(strings.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	rows := len(lines)
	if rows == 0 {
		return matrix.NewDense(0, 0), nil
	}
	cols := 1 + strings.Count(lines[0], string(opts.Delimiter))
	out := matrix.NewDense(rows, cols)
	dense := out.DenseValues()
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (rows + threads - 1) / threads
	for t := 0; t < threads; t++ {
		r0 := t * chunk
		if r0 >= rows {
			break
		}
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			for r := r0; r < r1; r++ {
				if err := parseCSVRow(lines[r], opts.Delimiter, dense[r*cols:(r+1)*cols]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("io: line %d: %w", r+1, err)
					}
					mu.Unlock()
					return
				}
			}
		}(r0, r1)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	out.RecomputeNNZ()
	out.ExamineAndApplySparsity()
	return out, nil
}

func parseCSVRow(line string, delim byte, dst []float64) error {
	start := 0
	col := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == delim {
			if col >= len(dst) {
				return fmt.Errorf("too many columns (expected %d)", len(dst))
			}
			field := strings.TrimSpace(line[start:i])
			if field != "" {
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return fmt.Errorf("invalid number %q", field)
				}
				dst[col] = v
			}
			col++
			start = i + 1
		}
	}
	if col != len(dst) {
		return fmt.Errorf("expected %d columns, found %d", len(dst), col)
	}
	return nil
}

// splitLines splits the file into lines with a single in-place scan over one
// string conversion, stripping a trailing \r per line (instead of rewriting
// the whole file with ReplaceAll before splitting).
func splitLines(data []byte) []string {
	s := string(data)
	lines := make([]string, 0, strings.Count(s, "\n")+1)
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := s[start:i]
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			lines = append(lines, line)
			start = i + 1
		}
	}
	return lines
}

// ReadFrameCSV reads a CSV file into a frame. When schema is nil, column
// types are inferred from the data (INT64, FP64, BOOLEAN or STRING).
func ReadFrameCSV(path string, schema types.Schema, opts CSVOptions) (*frame.FrameBlock, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("io: read %s: %w", path, err)
	}
	return ParseFrameCSV(data, schema, opts)
}

// ParseFrameCSV parses CSV bytes into a frame with optional schema inference.
func ParseFrameCSV(data []byte, schema types.Schema, opts CSVOptions) (*frame.FrameBlock, error) {
	lines := splitLines(data)
	var header []string
	if opts.Header && len(lines) > 0 {
		header = strings.Split(lines[0], string(opts.Delimiter))
		lines = lines[1:]
	}
	for len(lines) > 0 && len(strings.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	rows := len(lines)
	if rows == 0 {
		return frame.NewFrame(types.Schema{}, 0), nil
	}
	cells := make([][]string, rows)
	for r, line := range lines {
		cells[r] = strings.Split(line, string(opts.Delimiter))
		for i := range cells[r] {
			cells[r][i] = strings.TrimSpace(cells[r][i])
		}
	}
	cols := len(cells[0])
	if schema == nil {
		schema = inferSchema(cells, cols)
	}
	if len(schema) != cols {
		return nil, fmt.Errorf("io: schema has %d columns, data has %d", len(schema), cols)
	}
	f := frame.NewFrame(schema, rows)
	if header != nil {
		names := make([]string, cols)
		for i := range names {
			if i < len(header) {
				names[i] = strings.TrimSpace(header[i])
			} else {
				names[i] = fmt.Sprintf("C%d", i+1)
			}
		}
		if err := f.SetColumnNames(names); err != nil {
			return nil, err
		}
	}
	for r := 0; r < rows; r++ {
		if len(cells[r]) != cols {
			return nil, fmt.Errorf("io: line %d has %d columns, expected %d", r+1, len(cells[r]), cols)
		}
		for c := 0; c < cols; c++ {
			if err := f.SetString(r, c, cells[r][c]); err != nil {
				return nil, fmt.Errorf("io: line %d: %w", r+1, err)
			}
		}
	}
	return f, nil
}

func inferSchema(cells [][]string, cols int) types.Schema {
	schema := make(types.Schema, cols)
	for c := 0; c < cols; c++ {
		isInt, isFloat, isBool := true, true, true
		for r := range cells {
			if c >= len(cells[r]) {
				continue
			}
			v := cells[r][c]
			if v == "" || v == "NA" {
				continue
			}
			if _, err := strconv.ParseInt(v, 10, 64); err != nil {
				isInt = false
			}
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				isFloat = false
			}
			if v != "true" && v != "false" && v != "TRUE" && v != "FALSE" {
				isBool = false
			}
		}
		switch {
		case isBool:
			schema[c] = types.Boolean
		case isInt:
			schema[c] = types.INT64
		case isFloat:
			schema[c] = types.FP64
		default:
			schema[c] = types.String
		}
	}
	return schema
}

// WriteFrameCSV writes a frame to a CSV file, including a header row with the
// column names when opts.Header is set.
func WriteFrameCSV(path string, f *frame.FrameBlock, opts CSVOptions) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("io: create %s: %w", path, err)
	}
	defer file.Close()
	w := bufio.NewWriterSize(file, 1<<20)
	delim := string(opts.Delimiter)
	if opts.Header {
		if _, err := w.WriteString(strings.Join(f.ColumnNames(), delim) + "\n"); err != nil {
			return err
		}
	}
	for r := 0; r < f.NumRows(); r++ {
		for c := 0; c < f.NumCols(); c++ {
			if c > 0 {
				if err := w.WriteByte(opts.Delimiter); err != nil {
					return err
				}
			}
			s, err := f.GetString(r, c)
			if err != nil {
				return err
			}
			if _, err := w.WriteString(s); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}
