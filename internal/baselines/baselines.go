// Package baselines implements the baseline executors of the paper's
// evaluation (Figure 5): eager executors of the hyper-parameter optimization
// workload shaped like TensorFlow (TF), TensorFlow with a single graph and
// common subexpression elimination (TF-G), and Julia. The executors reproduce
// the baselines' redundancy behaviour (who materializes the transpose, who
// eliminates common subexpressions within a single computation, and the fact
// that none of them reuses intermediates across the k model trainings) so the
// figure's relative comparison can be regenerated without the original
// systems (see DESIGN.md, Substitutions).
package baselines

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/matrix"
)

// System identifies a baseline execution strategy.
type System int

// Baseline systems.
const (
	// Naive mimics eager TensorFlow (TF in Figure 5): tf.matmul(
	// tf.matrix_transpose(X), X) materializes the transpose for every model
	// and recomputes every operation per model.
	Naive System = iota
	// GraphCSE mimics TensorFlow with tensor outputs (TF-G): a single graph
	// computes all k models, so the transpose and the Gram matrix are
	// common subexpressions evaluated once, but no reuse happens across
	// separate invocations.
	GraphCSE
	// Eager mimics Julia: fused (non-materializing) transpose-multiply per
	// model, no reuse across models.
	Eager
)

// String returns the display name used in the figures.
func (s System) String() string {
	switch s {
	case Naive:
		return "TF"
	case GraphCSE:
		return "TF-G"
	case Eager:
		return "Julia"
	default:
		return "?"
	}
}

// Result is the output of one hyper-parameter workload execution.
type Result struct {
	Models *matrix.MatrixBlock // one column per lambda
	Losses []float64
}

// RunHyperParameterWorkload trains one lmDS model per lambda on (x, y) using
// the given baseline strategy and returns the model matrix.
func RunHyperParameterWorkload(sys System, x, y *matrix.MatrixBlock, lambdas []float64, threads int) (*Result, error) {
	switch sys {
	case Naive:
		return runNaive(x, y, lambdas, threads)
	case GraphCSE:
		return runGraphCSE(x, y, lambdas, threads)
	case Eager:
		return runEager(x, y, lambdas, threads)
	default:
		return nil, fmt.Errorf("baselines: unknown system %d", sys)
	}
}

// runNaive recomputes the materialized transpose and both matrix products for
// every model (eager TF behaviour). Like TF 1.x, whose sparse-dense matrix
// multiply lacks a fused transpose call, the transpose is materialized as a
// dense tensor even for sparse inputs (Section 4.2).
func runNaive(x, y *matrix.MatrixBlock, lambdas []float64, threads int) (*Result, error) {
	models := matrix.NewDense(x.Cols(), len(lambdas))
	losses := make([]float64, len(lambdas))
	for i, lam := range lambdas {
		xt := matrix.Transpose(x).ToDense() // materialized (dense) per model
		gram, err := matrix.Multiply(xt, x, threads)
		if err != nil {
			return nil, err
		}
		xty, err := matrix.Multiply(xt, y, threads)
		if err != nil {
			return nil, err
		}
		beta, err := solveRidge(gram, xty, lam)
		if err != nil {
			return nil, err
		}
		if err := storeModel(models, beta, i); err != nil {
			return nil, err
		}
		losses[i], err = trainingLoss(x, y, beta, threads)
		if err != nil {
			return nil, err
		}
	}
	return &Result{Models: models, Losses: losses}, nil
}

// runGraphCSE evaluates the materialized transpose once (the common
// subexpression a single graph can share), but — matching the paper's
// observation that none of the baselines eliminates the redundant matrix
// multiplications — still recomputes the Gram matrix and X^T y per model.
func runGraphCSE(x, y *matrix.MatrixBlock, lambdas []float64, threads int) (*Result, error) {
	xt := matrix.Transpose(x).ToDense() // still materialized, but only once
	models := matrix.NewDense(x.Cols(), len(lambdas))
	losses := make([]float64, len(lambdas))
	for i, lam := range lambdas {
		gram, err := matrix.Multiply(xt, x, threads)
		if err != nil {
			return nil, err
		}
		xty, err := matrix.Multiply(xt, y, threads)
		if err != nil {
			return nil, err
		}
		beta, err := solveRidge(gram, xty, lam)
		if err != nil {
			return nil, err
		}
		if err := storeModel(models, beta, i); err != nil {
			return nil, err
		}
		losses[i], err = trainingLoss(x, y, beta, threads)
		if err != nil {
			return nil, err
		}
	}
	return &Result{Models: models, Losses: losses}, nil
}

// runEager uses the fused transpose-self multiply per model (no transpose
// materialization, as in Julia's X'X) but recomputes it for every model.
func runEager(x, y *matrix.MatrixBlock, lambdas []float64, threads int) (*Result, error) {
	models := matrix.NewDense(x.Cols(), len(lambdas))
	losses := make([]float64, len(lambdas))
	for i, lam := range lambdas {
		gram := matrix.TSMM(x, threads)
		xty, err := matrix.Multiply(matrix.Transpose(x), y, threads)
		if err != nil {
			return nil, err
		}
		beta, err := solveRidge(gram, xty, lam)
		if err != nil {
			return nil, err
		}
		if err := storeModel(models, beta, i); err != nil {
			return nil, err
		}
		losses[i], err = trainingLoss(x, y, beta, threads)
		if err != nil {
			return nil, err
		}
	}
	return &Result{Models: models, Losses: losses}, nil
}

// solveRidge solves (gram + lambda*I) beta = xty.
func solveRidge(gram, xty *matrix.MatrixBlock, lambda float64) (*matrix.MatrixBlock, error) {
	a := gram.Copy()
	for i := 0; i < a.Rows(); i++ {
		a.Set(i, i, a.Get(i, i)+lambda)
	}
	return matrix.Solve(a, xty)
}

func storeModel(models, beta *matrix.MatrixBlock, col int) error {
	updated, err := matrix.LeftIndex(models, beta, 0, beta.Rows(), col, col+1)
	if err != nil {
		return err
	}
	*models = *updated
	return nil
}

func trainingLoss(x, y, beta *matrix.MatrixBlock, threads int) (float64, error) {
	pred, err := matrix.Multiply(x, beta, threads)
	if err != nil {
		return 0, err
	}
	diff, err := matrix.CellwiseOp(pred, y, matrix.OpSub, threads)
	if err != nil {
		return 0, err
	}
	return matrix.SumSq(diff, threads) / float64(x.Rows()), nil
}
