package baselines

import (
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
)

func TestSystemNames(t *testing.T) {
	if Naive.String() != "TF" || GraphCSE.String() != "TF-G" || Eager.String() != "Julia" {
		t.Error("system names wrong")
	}
	if System(99).String() != "?" {
		t.Error("unknown system name wrong")
	}
}

func TestAllBaselinesProduceIdenticalModels(t *testing.T) {
	x, y := matrix.SyntheticRegression(300, 12, 1.0, 1)
	lambdas := []float64{0.001, 0.1, 10}
	var reference *matrix.MatrixBlock
	for _, sys := range []System{Naive, GraphCSE, Eager} {
		res, err := RunHyperParameterWorkload(sys, x, y, lambdas, 0)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Models.Rows() != 12 || res.Models.Cols() != 3 {
			t.Fatalf("%s: model dims %dx%d", sys, res.Models.Rows(), res.Models.Cols())
		}
		if len(res.Losses) != 3 {
			t.Fatalf("%s: losses %d", sys, len(res.Losses))
		}
		if reference == nil {
			reference = res.Models
			continue
		}
		if !res.Models.Equals(reference, 1e-8) {
			t.Errorf("%s produces different models than the reference baseline", sys)
		}
	}
}

func TestBaselinesMatchClosedFormSolution(t *testing.T) {
	// with a tiny lambda the first model must recover the generating weights
	x, y := matrix.SyntheticRegression(500, 8, 1.0, 2)
	res, err := RunHyperParameterWorkload(Eager, x, y, []float64{1e-8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := matrix.Slice(res.Models, 0, 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := matrix.Multiply(x, beta, 0)
	diff, _ := matrix.CellwiseOp(pred, y, matrix.OpSub, 1)
	mse := matrix.SumSq(diff, 1) / float64(x.Rows())
	if mse > 0.01 {
		t.Errorf("baseline model mse = %v", mse)
	}
	if res.Losses[0] > 0.01 {
		t.Errorf("reported loss = %v", res.Losses[0])
	}
}

func TestBaselinesSparseInput(t *testing.T) {
	x, y := matrix.SyntheticRegression(400, 20, 0.1, 3)
	if !x.IsSparse() {
		t.Fatal("expected sparse input")
	}
	dense := x.Copy().ToDense()
	for _, sys := range []System{Naive, GraphCSE, Eager} {
		sparseRes, err := RunHyperParameterWorkload(sys, x, y, []float64{0.01}, 0)
		if err != nil {
			t.Fatalf("%s sparse: %v", sys, err)
		}
		denseRes, err := RunHyperParameterWorkload(sys, dense, y, []float64{0.01}, 0)
		if err != nil {
			t.Fatalf("%s dense: %v", sys, err)
		}
		if !sparseRes.Models.Equals(denseRes.Models, 1e-8) {
			t.Errorf("%s: sparse and dense inputs disagree", sys)
		}
	}
}

func TestLossesIncreaseWithRegularization(t *testing.T) {
	x, y := matrix.SyntheticRegression(300, 10, 1.0, 4)
	res, err := RunHyperParameterWorkload(GraphCSE, x, y, []float64{1e-6, 1, 1000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Losses[0] <= res.Losses[1]+1e-9 && res.Losses[1] <= res.Losses[2]+1e-9) {
		t.Errorf("training losses not monotone in lambda: %v", res.Losses)
	}
}

func TestUnknownSystemRejected(t *testing.T) {
	x, y := matrix.SyntheticRegression(10, 2, 1.0, 5)
	if _, err := RunHyperParameterWorkload(System(42), x, y, []float64{1}, 0); err == nil {
		t.Error("expected unknown system error")
	}
}
