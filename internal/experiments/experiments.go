// Package experiments implements the benchmark harness that regenerates the
// paper's evaluation (Figure 5(a)-(d), Section 4) and the ablation
// experiments called out in DESIGN.md. The same harness backs the
// cmd/sysdsbench binary and the testing.B benchmarks in bench_test.go; the
// default scale is reduced relative to the paper's 100K x 1K inputs, and the
// paper scale can be selected explicitly.
package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/systemds/systemds-go/internal/baselines"
	"github.com/systemds/systemds-go/internal/core"
	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/fed"
	sdsio "github.com/systemds/systemds-go/internal/io"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/paramserv"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// Scale configures the data sizes of the hyper-parameter workload.
type Scale struct {
	Name      string
	Rows      int
	Cols      int
	Ks        []int // number of models per run (Figure 5(a)-(c))
	RowsSweep []int // row counts for Figure 5(d)
	KFixed    int   // models for Figure 5(d)
}

// SmallScale is the default laptop-friendly scale.
func SmallScale() Scale {
	return Scale{
		Name: "small", Rows: 20000, Cols: 100,
		Ks:        []int{1, 10, 20, 30, 40},
		RowsSweep: []int{5000, 10000, 20000, 40000},
		KFixed:    40,
	}
}

// TinyScale is used by unit tests and testing.B benchmarks.
func TinyScale() Scale {
	return Scale{
		Name: "tiny", Rows: 2000, Cols: 40,
		Ks:        []int{1, 5, 10},
		RowsSweep: []int{1000, 2000, 4000},
		KFixed:    10,
	}
}

// PaperScale reproduces the paper's sizes (100K x 1K, k up to 70). Running it
// requires tens of gigabytes of memory and considerable time.
func PaperScale() Scale {
	return Scale{
		Name: "paper", Rows: 100000, Cols: 1000,
		Ks:        []int{1, 10, 20, 30, 40, 50, 60, 70},
		RowsSweep: []int{33000, 100000, 330000, 1000000, 3300000},
		KFixed:    70,
	}
}

// Point is one measurement of a series.
type Point struct {
	X       float64
	Seconds float64
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a regenerated table/figure: named series over a common x-axis.
type Figure struct {
	Name   string
	Title  string
	XLabel string
	Series []Series
	Notes  []string
}

// Render renders the figure as an aligned text table (one row per x value,
// one column per series), the form in which EXPERIMENTS.md records results.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", f.Name, f.Title)
	// collect x values from the first series
	if len(f.Series) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%14s", s.Label)
	}
	sb.WriteString("\n")
	for i := range f.Series[0].Points {
		fmt.Fprintf(&sb, "%-12g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&sb, "%13.3fs", s.Points[i].Seconds)
			} else {
				fmt.Fprintf(&sb, "%14s", "-")
			}
		}
		sb.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// lambdas returns k regularization values.
func lambdas(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = float64(i+1) / 1000.0
	}
	return out
}

// workloadScript is the DML hyper-parameter optimization script of
// Section 4.1: read a CSV file, train k lmDS models with different
// regularization values, and write the models to a CSV file.
const workloadScript = `
X = read($Xpath)
y = read($ypath)
lambdas = seq(1, $k, 1) / 1000
[B, losses] = gridSearchLM(X, y, lambdas)
write(B, $Bpath)
`

// PrepareWorkloadFiles generates the synthetic regression input of the
// Section 4.1 workload and returns the CSV paths.
func PrepareWorkloadFiles(dir string, rows, cols int, sparsity float64, seed int64) (xPath, yPath string, err error) {
	x, y := matrix.SyntheticRegression(rows, cols, sparsity, seed)
	xPath = filepath.Join(dir, fmt.Sprintf("X_%d_%d_%v.csv", rows, cols, sparsity))
	yPath = filepath.Join(dir, fmt.Sprintf("y_%d_%v.csv", rows, sparsity))
	if err := sdsio.WriteMatrixCSV(xPath, x, sdsio.DefaultCSVOptions()); err != nil {
		return "", "", err
	}
	if err := sdsio.WriteMatrixCSV(yPath, y, sdsio.DefaultCSVOptions()); err != nil {
		return "", "", err
	}
	return xPath, yPath, nil
}

// substituteScript replaces the $-placeholders of the workload script.
func substituteScript(xPath, yPath, bPath string, k int) string {
	s := workloadScript
	s = strings.ReplaceAll(s, "$Xpath", fmt.Sprintf("%q", xPath))
	s = strings.ReplaceAll(s, "$ypath", fmt.Sprintf("%q", yPath))
	s = strings.ReplaceAll(s, "$Bpath", fmt.Sprintf("%q", bPath))
	s = strings.ReplaceAll(s, "$k", fmt.Sprint(k))
	return s
}

// RunSysDSWorkload runs the end-to-end DML workload (CSV read, k models,
// CSV write) with the given configuration and returns the elapsed time.
func RunSysDSWorkload(dir, xPath, yPath string, k int, reuse, useBLAS bool) (time.Duration, *core.Stats, error) {
	cfg := runtime.DefaultConfig()
	cfg.ReuseEnabled = reuse
	cfg.UseBLAS = useBLAS
	engine := core.NewEngine(cfg)
	engine.SetOutput(discard{})
	bPath := filepath.Join(dir, fmt.Sprintf("B_%d.csv", time.Now().UnixNano()))
	script := substituteScript(xPath, yPath, bPath, k)
	start := time.Now()
	_, stats, err := engine.Execute(script, nil, nil)
	elapsed := time.Since(start)
	_ = os.Remove(bPath)
	if err != nil {
		return 0, nil, err
	}
	return elapsed, stats, nil
}

// ReadWorkloadCSV reads a workload CSV with the multi-threaded parser (used
// by the CSV-parse micro-benchmark).
func ReadWorkloadCSV(path string) (*matrix.MatrixBlock, error) {
	return sdsio.ReadMatrixCSV(path, sdsio.DefaultCSVOptions())
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// RunBaselineWorkload runs the same end-to-end workload with one of the
// baseline executors (CSV read, k models, CSV write).
func RunBaselineWorkload(dir, xPath, yPath string, k int, sys baselines.System) (time.Duration, error) {
	start := time.Now()
	x, err := sdsio.ReadMatrixCSV(xPath, sdsio.DefaultCSVOptions())
	if err != nil {
		return 0, err
	}
	y, err := sdsio.ReadMatrixCSV(yPath, sdsio.DefaultCSVOptions())
	if err != nil {
		return 0, err
	}
	res, err := baselines.RunHyperParameterWorkload(sys, x, y, lambdas(k), 0)
	if err != nil {
		return 0, err
	}
	bPath := filepath.Join(dir, fmt.Sprintf("B_base_%d.csv", time.Now().UnixNano()))
	if err := sdsio.WriteMatrixCSV(bPath, res.Models, sdsio.DefaultCSVOptions()); err != nil {
		return 0, err
	}
	_ = os.Remove(bPath)
	return time.Since(start), nil
}

// Figure5a regenerates "Baselines Dense": TF vs TF-G vs Julia vs SysDS vs
// SysDS-B over the number of models k on dense data.
func Figure5a(scale Scale, dir string) (*Figure, error) {
	xPath, yPath, err := PrepareWorkloadFiles(dir, scale.Rows, scale.Cols, 1.0, 1001)
	if err != nil {
		return nil, err
	}
	fig := &Figure{Name: "Figure 5(a)", Title: "Baselines Dense (hyper-parameter workload)", XLabel: "k models"}
	systems := []struct {
		label string
		run   func(k int) (time.Duration, error)
	}{
		{"TF", func(k int) (time.Duration, error) { return RunBaselineWorkload(dir, xPath, yPath, k, baselines.Naive) }},
		{"TF-G", func(k int) (time.Duration, error) {
			return RunBaselineWorkload(dir, xPath, yPath, k, baselines.GraphCSE)
		}},
		{"Julia", func(k int) (time.Duration, error) { return RunBaselineWorkload(dir, xPath, yPath, k, baselines.Eager) }},
		{"SysDS", func(k int) (time.Duration, error) {
			d, _, err := RunSysDSWorkload(dir, xPath, yPath, k, false, false)
			return d, err
		}},
		{"SysDS-B", func(k int) (time.Duration, error) {
			d, _, err := RunSysDSWorkload(dir, xPath, yPath, k, false, true)
			return d, err
		}},
	}
	for _, sys := range systems {
		series := Series{Label: sys.label}
		for _, k := range scale.Ks {
			elapsed, err := sys.run(k)
			if err != nil {
				return nil, fmt.Errorf("%s k=%d: %w", sys.label, k, err)
			}
			series.Points = append(series.Points, Point{X: float64(k), Seconds: elapsed.Seconds()})
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("dense %dx%d input, end-to-end including CSV I/O", scale.Rows, scale.Cols))
	return fig, nil
}

// Figure5b regenerates "Baselines Sparse": the same workload on data with
// sparsity 0.1.
func Figure5b(scale Scale, dir string) (*Figure, error) {
	xPath, yPath, err := PrepareWorkloadFiles(dir, scale.Rows, scale.Cols, 0.1, 2002)
	if err != nil {
		return nil, err
	}
	fig := &Figure{Name: "Figure 5(b)", Title: "Baselines Sparse (sparsity 0.1)", XLabel: "k models"}
	systems := []struct {
		label string
		run   func(k int) (time.Duration, error)
	}{
		{"TF", func(k int) (time.Duration, error) { return RunBaselineWorkload(dir, xPath, yPath, k, baselines.Naive) }},
		{"TF-G", func(k int) (time.Duration, error) {
			return RunBaselineWorkload(dir, xPath, yPath, k, baselines.GraphCSE)
		}},
		{"Julia", func(k int) (time.Duration, error) { return RunBaselineWorkload(dir, xPath, yPath, k, baselines.Eager) }},
		{"SysDS", func(k int) (time.Duration, error) {
			d, _, err := RunSysDSWorkload(dir, xPath, yPath, k, false, false)
			return d, err
		}},
	}
	for _, sys := range systems {
		series := Series{Label: sys.label}
		for _, k := range scale.Ks {
			elapsed, err := sys.run(k)
			if err != nil {
				return nil, fmt.Errorf("%s k=%d: %w", sys.label, k, err)
			}
			series.Points = append(series.Points, Point{X: float64(k), Seconds: elapsed.Seconds()})
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Notes = append(fig.Notes, "sparse inputs kept in CSR; SysDS avoids transpose materialization via tsmm")
	return fig, nil
}

// Figure5c regenerates "Reuse Dense": SysDS with and without lineage-based
// reuse over the number of models.
func Figure5c(scale Scale, dir string) (*Figure, error) {
	xPath, yPath, err := PrepareWorkloadFiles(dir, scale.Rows, scale.Cols, 1.0, 3003)
	if err != nil {
		return nil, err
	}
	fig := &Figure{Name: "Figure 5(c)", Title: "Reuse Dense (SysDS vs SysDS w/ Reuse)", XLabel: "k models"}
	for _, reuse := range []bool{false, true} {
		label := "SysDS"
		if reuse {
			label = "SysDS+Reuse"
		}
		series := Series{Label: label}
		for _, k := range scale.Ks {
			elapsed, _, err := RunSysDSWorkload(dir, xPath, yPath, k, reuse, false)
			if err != nil {
				return nil, fmt.Errorf("%s k=%d: %w", label, k, err)
			}
			series.Points = append(series.Points, Point{X: float64(k), Seconds: elapsed.Seconds()})
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Notes = append(fig.Notes, "reuse eliminates the redundant t(X)%*%X and t(X)%*%y across the k models")
	return fig, nil
}

// Figure5d regenerates "Reuse Sparse": SysDS with and without reuse over the
// number of rows at fixed k and sparsity 0.1.
func Figure5d(scale Scale, dir string) (*Figure, error) {
	fig := &Figure{Name: "Figure 5(d)", Title: fmt.Sprintf("Reuse Sparse (k=%d models, sparsity 0.1)", scale.KFixed), XLabel: "rows"}
	noReuse := Series{Label: "SysDS"}
	withReuse := Series{Label: "SysDS+Reuse"}
	for _, rows := range scale.RowsSweep {
		xPath, yPath, err := PrepareWorkloadFiles(dir, rows, scale.Cols, 0.1, int64(4000+rows))
		if err != nil {
			return nil, err
		}
		e1, _, err := RunSysDSWorkload(dir, xPath, yPath, scale.KFixed, false, false)
		if err != nil {
			return nil, err
		}
		e2, _, err := RunSysDSWorkload(dir, xPath, yPath, scale.KFixed, true, false)
		if err != nil {
			return nil, err
		}
		noReuse.Points = append(noReuse.Points, Point{X: float64(rows), Seconds: e1.Seconds()})
		withReuse.Points = append(withReuse.Points, Point{X: float64(rows), Seconds: e2.Seconds()})
	}
	fig.Series = []Series{noReuse, withReuse}
	fig.Notes = append(fig.Notes, "the reuse benefit grows with the input size because the remaining work is size-independent")
	return fig, nil
}

// AblationSteplmPartialReuse measures full and partial reuse on an
// incremental feature-selection workload (Example 1 access pattern): models
// are trained on a growing cbind-prefix of the features.
func AblationSteplmPartialReuse(rows, cols int) (*Figure, error) {
	x, y := matrix.SyntheticRegression(rows, cols, 1.0, 5005)
	script := `
Xg = X[, 1]
m = ncol(X)
for (i in 2:m) {
  xi = X[, i]
  Xg = cbind(Xg, xi)
  B = lmDS(Xg, y, 0.001)
}
total = sum(B)
`
	fig := &Figure{Name: "Ablation A1", Title: "Partial reuse on incremental feature selection", XLabel: "mode"}
	modes := []struct {
		label string
		reuse bool
	}{{"no-reuse", false}, {"reuse", true}}
	for i, m := range modes {
		cfg := runtime.DefaultConfig()
		cfg.ReuseEnabled = m.reuse
		engine := core.NewEngine(cfg)
		engine.SetOutput(discard{})
		start := time.Now()
		_, stats, err := engine.Execute(script, map[string]any{"X": x, "y": y}, []string{"total"})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		fig.Series = append(fig.Series, Series{Label: m.label, Points: []Point{{X: float64(i), Seconds: elapsed.Seconds()}}})
		if m.reuse {
			fig.Notes = append(fig.Notes, fmt.Sprintf("reuse stats: hits=%d partial=%d puts=%d",
				stats.CacheStats.Hits, stats.CacheStats.PartialHits, stats.CacheStats.Puts))
		}
	}
	return fig, nil
}

// AblationDistVsLocal compares the local TSMM kernel against the blocked
// distributed backend for growing inputs (the operator-selection trade-off).
func AblationDistVsLocal(rowsList []int, cols, blocksize int) (*Figure, error) {
	fig := &Figure{Name: "Ablation A2", Title: "Local vs blocked-distributed TSMM", XLabel: "rows"}
	local := Series{Label: "CP"}
	blocked := Series{Label: "DIST"}
	for _, rows := range rowsList {
		x := matrix.RandUniform(rows, cols, 0, 1, 1.0, int64(rows))
		start := time.Now()
		localRes := matrix.TSMM(x, 0)
		local.Points = append(local.Points, Point{X: float64(rows), Seconds: time.Since(start).Seconds()})
		bm, err := dist.FromMatrixBlock(x, blocksize)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		distRes, err := dist.TSMM(bm, 0)
		if err != nil {
			return nil, err
		}
		blocked.Points = append(blocked.Points, Point{X: float64(rows), Seconds: time.Since(start).Seconds()})
		if !localRes.Equals(distRes, 1e-6) {
			return nil, fmt.Errorf("distributed TSMM result differs from local result")
		}
	}
	fig.Series = []Series{local, blocked}
	return fig, nil
}

// AblationBlockedChain measures the repartition overhead removed by the
// first-class blocked objects on the chained pipeline
// Y = (X + X) %*% W; s = sum(Y): the "eager" series re-partitions the input
// and collects the blocked result around every single operator (the behavior
// before blocked results flowed through the symbol table), the "blocked"
// series partitions X once and keeps every intermediate blocked.
func AblationBlockedChain(rowsList []int, cols, blocksize int) (*Figure, error) {
	fig := &Figure{Name: "Ablation A2b", Title: "Eager repartition vs blocked chain: (X+X) %*% W; sum", XLabel: "rows"}
	eager := Series{Label: "DIST eager"}
	blocked := Series{Label: "DIST blocked"}
	for _, rows := range rowsList {
		x := matrix.RandUniform(rows, cols, 0, 1, 1.0, int64(rows))
		w := matrix.RandUniform(cols, cols/2+1, 0, 1, 1.0, int64(cols))

		// eager: partition/collect around every operator
		start := time.Now()
		bx, err := dist.FromMatrixBlock(x, blocksize)
		if err != nil {
			return nil, err
		}
		by, err := dist.Cellwise(bx, bx, matrix.OpAdd)
		if err != nil {
			return nil, err
		}
		yLocal, err := by.ToMatrixBlock()
		if err != nil {
			return nil, err
		}
		by2, err := dist.FromMatrixBlock(yLocal, blocksize)
		if err != nil {
			return nil, err
		}
		bz, err := dist.MatMult(by2, w, 0)
		if err != nil {
			return nil, err
		}
		zLocal, err := bz.ToMatrixBlock()
		if err != nil {
			return nil, err
		}
		bz2, err := dist.FromMatrixBlock(zLocal, blocksize)
		if err != nil {
			return nil, err
		}
		sEager, err := dist.FullAgg(bz2, "sum")
		if err != nil {
			return nil, err
		}
		eager.Points = append(eager.Points, Point{X: float64(rows), Seconds: time.Since(start).Seconds()})

		// blocked: partition once, every intermediate stays blocked
		start = time.Now()
		bx, err = dist.FromMatrixBlock(x, blocksize)
		if err != nil {
			return nil, err
		}
		bySt, err := dist.Cellwise(bx, bx, matrix.OpAdd)
		if err != nil {
			return nil, err
		}
		bzSt, err := dist.MatMult(bySt, w, 0)
		if err != nil {
			return nil, err
		}
		sBlocked, err := dist.FullAgg(bzSt, "sum")
		if err != nil {
			return nil, err
		}
		blocked.Points = append(blocked.Points, Point{X: float64(rows), Seconds: time.Since(start).Seconds()})

		if diff := sEager - sBlocked; diff > 1e-6 || diff < -1e-6 {
			return nil, fmt.Errorf("blocked chain result differs from eager chain: %g vs %g", sBlocked, sEager)
		}
	}
	fig.Series = []Series{eager, blocked}
	return fig, nil
}

// AblationFusedPipelines (A5) measures the fusion subsystem: the mmchain and
// cellwise-aggregate pipelines of an lmDS-style script executed fused
// (single-pass kernels, no full-size intermediates) versus unfused. The run
// asserts via the fused-operator counters that fusion actually fired and that
// both executions agree within 1e-6 relative error.
func AblationFusedPipelines(rows, cols int) (*Figure, error) {
	x := matrix.RandUniform(rows, cols, -1, 1, 1.0, 7007)
	y := matrix.RandUniform(rows, cols, -1, 1, 1.0, 7008)
	v := matrix.RandUniform(cols, 1, -1, 1, 1.0, 7009)
	script := `s = sum(X * Y)
q = sum((X - Y)^2)
g = t(X) %*% (X %*% v)
r = sum(g)`
	inputs := map[string]any{"X": x, "Y": y, "v": v}
	runOnce := func(fusion bool) (time.Duration, map[string]any, *core.Stats, error) {
		cfg := runtime.DefaultConfig()
		cfg.FusionDisabled = !fusion
		engine := core.NewEngine(cfg)
		engine.SetOutput(discard{})
		start := time.Now()
		res, stats, err := engine.Execute(script, inputs, []string{"s", "q", "r"})
		return time.Since(start), res, stats, err
	}
	// warm both paths once, then measure
	if _, _, _, err := runOnce(true); err != nil {
		return nil, err
	}
	elFused, resFused, stats, err := runOnce(true)
	if err != nil {
		return nil, err
	}
	if stats.FusedStats.FusedAggOps == 0 || stats.FusedStats.MMChainOps == 0 {
		return nil, fmt.Errorf("fused run did not execute fused instructions: %+v", stats.FusedStats)
	}
	elUnfused, resUnfused, _, err := runOnce(false)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"s", "q", "r"} {
		f, u := resFused[name].(float64), resUnfused[name].(float64)
		// relative tolerance: accumulation-order differences between the
		// fused chunk-ordered reduction and the unfused kernels grow with the
		// input size, so an absolute bound would not scale
		scale := math.Max(1, math.Max(math.Abs(f), math.Abs(u)))
		if d := math.Abs(f-u) / scale; d > 1e-6 {
			return nil, fmt.Errorf("fused %s = %g differs from unfused %g (rel %g)", name, f, u, d)
		}
	}
	fig := &Figure{Name: "Ablation A5", Title: "Fused vs unfused operator pipelines", XLabel: "mode"}
	fig.Series = []Series{
		{Label: "unfused", Points: []Point{{X: 0, Seconds: elUnfused.Seconds()}}},
		{Label: "fused", Points: []Point{{X: 1, Seconds: elFused.Seconds()}}},
	}
	return fig, nil
}

// AblationMatMultStrategies (A6) measures the cost-based matmult planner: a
// multiplication whose operands both exceed the broadcast budget is executed
// once through the engine (the planner picks the strategy, asserted via the
// plan statistics) and once per forced physical strategy through the dist
// executors directly (broadcast join, grid join, shuffle split). All four
// paths must agree with the local result; the planner point should track the
// cheapest forced strategy.
func AblationMatMultStrategies(k, blocksize int) (*Figure, error) {
	m, n := 2*blocksize, blocksize
	a := matrix.RandUniform(m, k, -1, 1, 1.0, 8008)
	b := matrix.RandUniform(k, n, -1, 1, 1.0, 8009)
	want, err := matrix.Multiply(a, b, 0)
	if err != nil {
		return nil, err
	}

	fig := &Figure{Name: "Ablation A6", Title: "Planner-chosen vs forced matmult strategy", XLabel: "mode"}

	// planner-chosen, through the compiler and runtime
	cfg := runtime.DefaultConfig()
	cfg.DistEnabled = true
	cfg.DistBlocksize = blocksize
	cfg.OperatorMemBudget = types.EstimateSizeDense(int64(k), int64(n)) / 2 // both operands exceed it
	engine := core.NewEngine(cfg)
	engine.SetOutput(discard{})
	inputs := map[string]any{"A": a, "B": b}
	start := time.Now()
	res, stats, err := engine.Execute(`C = A %*% B`, inputs, []string{"C"})
	if err != nil {
		return nil, err
	}
	planned := time.Since(start)
	chosen := "none"
	for _, r := range stats.PlanStats {
		if r.Op == "ba+*" {
			chosen = r.Plan
		}
	}
	if !want.Equals(res["C"].(*matrix.MatrixBlock), 0) {
		return nil, fmt.Errorf("planner-chosen matmult differs from local result")
	}
	fig.Series = append(fig.Series, Series{Label: "planner (" + chosen + ")",
		Points: []Point{{X: 0, Seconds: planned.Seconds()}}})
	fig.Notes = append(fig.Notes, fmt.Sprintf("planner chose strategy %q", chosen))

	// forced strategies on pre-partitioned operands
	ba, err := dist.FromMatrixBlock(a, blocksize)
	if err != nil {
		return nil, err
	}
	bb, err := dist.FromMatrixBlock(b, blocksize)
	if err != nil {
		return nil, err
	}
	forced := []struct {
		label string
		run   func() (*dist.BlockedMatrix, error)
	}{
		{"forced-br", func() (*dist.BlockedMatrix, error) { return dist.MatMult(ba, b, 0) }},
		{"forced-gj", func() (*dist.BlockedMatrix, error) { return dist.MatMultBB(ba, bb, 0) }},
		{"forced-sh", func() (*dist.BlockedMatrix, error) { return dist.MatMultShuffle(ba, bb, 0) }},
	}
	for i, f := range forced {
		start := time.Now()
		bm, err := f.run()
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		local, err := bm.ToMatrixBlock()
		if err != nil {
			return nil, err
		}
		if !want.Equals(local, 1e-9) {
			return nil, fmt.Errorf("%s result differs from local multiply", f.label)
		}
		fig.Series = append(fig.Series, Series{Label: f.label,
			Points: []Point{{X: float64(i + 1), Seconds: elapsed.Seconds()}}})
	}
	return fig, nil
}

// AblationFederatedTSMM compares a federated TSMM across two in-process
// workers against the equivalent local computation.
func AblationFederatedTSMM(rows, cols int) (*Figure, error) {
	x := matrix.RandUniform(rows, cols, 0, 1, 1.0, 6006)
	half := rows / 2
	x1, err := matrix.Slice(x, 0, half, 0, cols)
	if err != nil {
		return nil, err
	}
	x2, err := matrix.Slice(x, half, rows, 0, cols)
	if err != nil {
		return nil, err
	}
	w1 := fed.NewWorker(nil)
	w1.PutLocal("X", x1)
	addr1, err := w1.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer w1.Shutdown()
	w2 := fed.NewWorker(nil)
	w2.PutLocal("X", x2)
	addr2, err := w2.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer w2.Shutdown()
	fm, err := fed.NewFederatedMatrix(int64(rows), int64(cols), []fed.Range{
		{RowStart: 0, RowEnd: int64(half), ColStart: 0, ColEnd: int64(cols), Address: addr1, VarName: "X"},
		{RowStart: int64(half), RowEnd: int64(rows), ColStart: 0, ColEnd: int64(cols), Address: addr2, VarName: "X"},
	})
	if err != nil {
		return nil, err
	}
	defer fm.Close()
	fig := &Figure{Name: "Ablation A3", Title: "Federated vs local TSMM", XLabel: "mode"}
	start := time.Now()
	localRes := matrix.TSMM(x, 0)
	fig.Series = append(fig.Series, Series{Label: "local", Points: []Point{{X: 0, Seconds: time.Since(start).Seconds()}}})
	start = time.Now()
	fedRes, err := fm.TSMM()
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, Series{Label: "federated", Points: []Point{{X: 1, Seconds: time.Since(start).Seconds()}}})
	if !localRes.Equals(fedRes, 1e-6) {
		return nil, fmt.Errorf("federated TSMM result differs from local result")
	}
	fig.Notes = append(fig.Notes, "only d x d aggregates cross site boundaries")
	return fig, nil
}

// AblationParamServ compares BSP and ASP parameter-server training on the
// same linear regression task.
func AblationParamServ(rows, cols int) (*Figure, error) {
	x, y := matrix.SyntheticRegression(rows, cols, 1.0, 7007)
	init := matrix.NewDense(cols, 1)
	fig := &Figure{Name: "Ablation A4", Title: "Parameter server BSP vs ASP", XLabel: "mode"}
	for i, mode := range []paramserv.UpdateMode{paramserv.BSP, paramserv.ASP} {
		// a conservative step size keeps the asynchronous updates stable
		cfg := paramserv.Config{Workers: 4, Epochs: 5, BatchSize: 128, LearnRate: 0.02, Mode: mode}
		start := time.Now()
		model, stats, err := paramserv.Train(x, y, init, paramserv.LinRegGradient(), cfg)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		loss, err := paramserv.SquaredLoss(model, x, y)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, Series{Label: mode.String(), Points: []Point{{X: float64(i), Seconds: elapsed.Seconds()}}})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: loss=%.6f updates=%d", mode, loss, stats.Updates))
	}
	return fig, nil
}
