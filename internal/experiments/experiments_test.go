package experiments

import (
	"strings"
	"testing"

	"github.com/systemds/systemds-go/internal/baselines"
)

// microScale keeps the experiment harness tests fast.
func microScale() Scale {
	return Scale{
		Name: "micro", Rows: 300, Cols: 12,
		Ks:        []int{1, 3},
		RowsSweep: []int{200, 400},
		KFixed:    3,
	}
}

func TestScalePresets(t *testing.T) {
	for _, s := range []Scale{TinyScale(), SmallScale(), PaperScale()} {
		if s.Rows <= 0 || s.Cols <= 0 || len(s.Ks) == 0 || len(s.RowsSweep) == 0 || s.KFixed <= 0 {
			t.Errorf("scale %s malformed: %+v", s.Name, s)
		}
	}
	if PaperScale().Rows != 100000 || PaperScale().Cols != 1000 {
		t.Error("paper scale should match the paper's 100K x 1K input")
	}
}

func TestWorkloadFilesAndRunners(t *testing.T) {
	dir := t.TempDir()
	xPath, yPath, err := PrepareWorkloadFiles(dir, 200, 10, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ReadWorkloadCSV(xPath)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 200 || x.Cols() != 10 {
		t.Errorf("workload X dims %dx%d", x.Rows(), x.Cols())
	}
	// SysDS end-to-end workload with and without reuse
	if _, _, err := RunSysDSWorkload(dir, xPath, yPath, 3, false, false); err != nil {
		t.Fatalf("sysds workload: %v", err)
	}
	elapsed, stats, err := RunSysDSWorkload(dir, xPath, yPath, 3, true, false)
	if err != nil {
		t.Fatalf("sysds reuse workload: %v", err)
	}
	if elapsed <= 0 {
		t.Error("elapsed time not measured")
	}
	if stats.CacheStats.Hits == 0 {
		t.Errorf("expected reuse hits, stats = %+v", stats.CacheStats)
	}
	// baseline workload
	if _, err := RunBaselineWorkload(dir, xPath, yPath, 2, baselines.Naive); err != nil {
		t.Fatalf("baseline workload: %v", err)
	}
}

func TestFigure5cShowsReuseBenefit(t *testing.T) {
	dir := t.TempDir()
	fig, err := Figure5c(microScale(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	rendered := fig.Render()
	if !strings.Contains(rendered, "SysDS+Reuse") || !strings.Contains(rendered, "Figure 5(c)") {
		t.Errorf("rendering missing labels:\n%s", rendered)
	}
	// at the largest k, reuse should not be slower than no-reuse by more than
	// a small factor (it is usually much faster; tiny inputs can be noisy)
	last := len(fig.Series[0].Points) - 1
	noReuse := fig.Series[0].Points[last].Seconds
	withReuse := fig.Series[1].Points[last].Seconds
	if withReuse > noReuse*1.5 {
		t.Errorf("reuse run unexpectedly slow: %v vs %v", withReuse, noReuse)
	}
}

func TestAblationSteplmPartialReuse(t *testing.T) {
	fig, err := AblationSteplmPartialReuse(300, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	foundStats := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "partial=") {
			foundStats = true
			if !strings.Contains(n, "partial=0") {
				// partial hits present: good
				foundStats = true
			}
		}
	}
	if !foundStats {
		t.Errorf("expected reuse statistics note, got %v", fig.Notes)
	}
}

func TestAblationDistVsLocalAndFederated(t *testing.T) {
	fig, err := AblationDistVsLocal([]int{200, 400}, 16, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Points) != 2 {
		t.Errorf("dist ablation malformed: %+v", fig)
	}
	chainFig, err := AblationBlockedChain([]int{200, 400}, 16, 64)
	if err != nil {
		t.Fatalf("AblationBlockedChain: %v", err)
	}
	if len(chainFig.Series) != 2 || len(chainFig.Series[0].Points) != 2 {
		t.Errorf("unexpected chained ablation shape: %+v", chainFig.Series)
	}

	fedFig, err := AblationFederatedTSMM(300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fedFig.Series) != 2 {
		t.Errorf("federated ablation malformed: %+v", fedFig)
	}
}

func TestAblationParamServ(t *testing.T) {
	fig, err := AblationParamServ(400, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	if len(fig.Notes) < 2 || !strings.Contains(fig.Notes[0], "loss=") {
		t.Errorf("notes = %v", fig.Notes)
	}
}

func TestAblationFusedPipelines(t *testing.T) {
	fig, err := AblationFusedPipelines(300, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want unfused and fused", len(fig.Series))
	}
}

func TestAblationMatMultStrategies(t *testing.T) {
	fig, err := AblationMatMultStrategies(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want planner + 3 forced strategies", len(fig.Series))
	}
	// k=512 with a 128x512 left and 512x64 right operand sits past the
	// gj<->sh crossover, so the planner must have picked the shuffle split
	if fig.Series[0].Label != "planner (sh)" {
		t.Errorf("planner series label = %q, want planner (sh)", fig.Series[0].Label)
	}
}

func TestFigureRenderEmptyAndNotes(t *testing.T) {
	empty := &Figure{Name: "F", Title: "T"}
	if !strings.Contains(empty.Render(), "F — T") {
		t.Error("empty figure rendering wrong")
	}
	fig := &Figure{Name: "F", Title: "T", XLabel: "x",
		Series: []Series{{Label: "a", Points: []Point{{X: 1, Seconds: 2}}}, {Label: "b"}},
		Notes:  []string{"hello"}}
	out := fig.Render()
	if !strings.Contains(out, "note: hello") || !strings.Contains(out, "-") {
		t.Errorf("rendering = %s", out)
	}
}
