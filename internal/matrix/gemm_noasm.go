//go:build !amd64

package matrix

// gemmAsmAvailable gates the vectorized micro-kernel; without an assembly
// implementation every tiled path runs the scalar micro-kernel. A var (not a
// const) so kernel-equivalence tests can force the scalar path on any
// architecture.
var gemmAsmAvailable = false

func gemmMicroAVX2Asm(ap, bp *float64, kc int, c *float64, ldb int) {
	panic("matrix: no assembly GEMM micro-kernel on this architecture")
}
