package matrix

import (
	"math"
	"testing"
)

func TestScalarOp(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := ScalarOp(m, 2, OpMul, false, 1)
	want := FromRows([][]float64{{2, 4}, {6, 8}})
	if !got.Equals(want, 0) {
		t.Errorf("m*2 = %v", got)
	}
	got = ScalarOp(m, 10, OpSub, true, 1) // 10 - m
	want = FromRows([][]float64{{9, 8}, {7, 6}})
	if !got.Equals(want, 0) {
		t.Errorf("10-m = %v", got)
	}
	got = ScalarOp(m, 2, OpPow, false, 1)
	want = FromRows([][]float64{{1, 4}, {9, 16}})
	if !got.Equals(want, 0) {
		t.Errorf("m^2 = %v", got)
	}
	got = ScalarOp(m, 3, OpGreaterEqual, false, 1)
	want = FromRows([][]float64{{0, 0}, {1, 1}})
	if !got.Equals(want, 0) {
		t.Errorf("m>=3 = %v", got)
	}
}

func TestScalarOpSparsePreserved(t *testing.T) {
	m := RandUniform(30, 30, 1, 2, 0.1, 55)
	if !m.IsSparse() {
		t.Fatal("expected sparse input")
	}
	got := ScalarOp(m, 3, OpMul, false, 1)
	if !got.IsSparse() {
		t.Error("multiplication by scalar should preserve sparse representation")
	}
	want := ScalarOp(m.Copy().ToDense(), 3, OpMul, false, 1)
	if !got.Equals(want, 1e-12) {
		t.Error("sparse scalar op disagrees with dense")
	}
	// addition densifies because f(0,s) != 0
	got = ScalarOp(m, 3, OpAdd, false, 1)
	if got.Get(0, 1) == 0 && m.Get(0, 1) == 0 {
		// pick any zero cell and verify it became 3
		found := false
		for r := 0; r < m.Rows() && !found; r++ {
			for c := 0; c < m.Cols() && !found; c++ {
				if m.Get(r, c) == 0 {
					if got.Get(r, c) != 3 {
						t.Errorf("zero cell + 3 = %v, want 3", got.Get(r, c))
					}
					found = true
				}
			}
		}
	}
}

func TestUnaryApply(t *testing.T) {
	m := FromRows([][]float64{{-1, 4}, {9, -16}})
	if got := UnaryApply(m, OpAbs, 1); !got.Equals(FromRows([][]float64{{1, 4}, {9, 16}}), 0) {
		t.Errorf("abs = %v", got)
	}
	if got := UnaryApply(FromRows([][]float64{{4, 9}}), OpSqrt, 1); !got.Equals(FromRows([][]float64{{2, 3}}), 1e-12) {
		t.Errorf("sqrt = %v", got)
	}
	if got := UnaryApply(FromRows([][]float64{{0, 1}}), OpNot, 1); !got.Equals(FromRows([][]float64{{1, 0}}), 0) {
		t.Errorf("not = %v", got)
	}
	sig := UnaryApply(FromRows([][]float64{{0}}), OpSigmoid, 1)
	if math.Abs(sig.Get(0, 0)-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", sig.Get(0, 0))
	}
	if got := UnaryApply(FromRows([][]float64{{1}}), OpExp, 1).Get(0, 0); math.Abs(got-math.E) > 1e-12 {
		t.Errorf("exp(1) = %v", got)
	}
}

func TestCellwiseOpSameDim(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	got, err := CellwiseOp(a, b, OpAdd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(FromRows([][]float64{{11, 22}, {33, 44}}), 0) {
		t.Errorf("a+b = %v", got)
	}
	got, _ = CellwiseOp(a, b, OpMul, 1)
	if !got.Equals(FromRows([][]float64{{10, 40}, {90, 160}}), 0) {
		t.Errorf("a*b = %v", got)
	}
	if _, err := CellwiseOp(a, NewDense(3, 3), OpAdd, 1); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestCellwiseBroadcast(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	col := FromRows([][]float64{{10}, {20}})
	got, err := CellwiseOp(m, col, OpAdd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(FromRows([][]float64{{11, 12}, {23, 24}}), 0) {
		t.Errorf("m + colvec = %v", got)
	}
	row := FromRows([][]float64{{100, 200}})
	got, err = CellwiseOp(m, row, OpMul, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(FromRows([][]float64{{100, 400}, {300, 800}}), 0) {
		t.Errorf("m * rowvec = %v", got)
	}
	// reversed: vector op matrix
	got, err = CellwiseOp(col, m, OpSub, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(FromRows([][]float64{{9, 8}, {17, 16}}), 0) {
		t.Errorf("colvec - m = %v", got)
	}
}

func TestTernaryIfElse(t *testing.T) {
	cond := FromRows([][]float64{{1, 0}, {0, 1}})
	a := FromRows([][]float64{{10, 20}, {30, 40}})
	b := Fill(2, 2, -1)
	got, err := Ternary(cond, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{10, -1}, {-1, 40}})
	if !got.Equals(want, 0) {
		t.Errorf("ifelse = %v", got)
	}
	// scalar branches
	got, err = Ternary(cond, Fill(1, 1, 7), Fill(1, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(FromRows([][]float64{{7, 0}, {0, 7}}), 0) {
		t.Errorf("ifelse scalar = %v", got)
	}
	if _, err := Ternary(cond, NewDense(3, 3), b); err == nil {
		t.Error("expected shape error")
	}
}

func TestBinaryOpApplyTable(t *testing.T) {
	cases := []struct {
		op   BinaryOp
		a, b float64
		want float64
	}{
		{OpAdd, 2, 3, 5}, {OpSub, 2, 3, -1}, {OpMul, 2, 3, 6}, {OpDiv, 6, 3, 2},
		{OpPow, 2, 3, 8}, {OpMin, 2, 3, 2}, {OpMax, 2, 3, 3},
		{OpEqual, 2, 2, 1}, {OpNotEqual, 2, 2, 0}, {OpLess, 1, 2, 1},
		{OpLessEqual, 2, 2, 1}, {OpGreater, 3, 2, 1}, {OpGreaterEqual, 1, 2, 0},
		{OpAnd, 1, 0, 0}, {OpOr, 1, 0, 1}, {OpModulus, 7, 3, 1}, {OpIntDiv, 7, 3, 2},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v.Apply(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestUnaryOpApplyTable(t *testing.T) {
	cases := []struct {
		op   UnaryOp
		a    float64
		want float64
	}{
		{OpNeg, 2, -2}, {OpAbs, -3, 3}, {OpSqrt, 9, 3}, {OpRound, 2.5, 3},
		{OpFloor, 2.9, 2}, {OpCeil, 2.1, 3}, {OpSign, -7, -1}, {OpSign, 0, 0},
		{OpNot, 0, 1}, {OpNot, 5, 0}, {OpIsNaN, 1, 0},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a); got != c.want {
			t.Errorf("%v.Apply(%v) = %v, want %v", c.op, c.a, got, c.want)
		}
	}
	if got := OpIsNaN.Apply(math.NaN()); got != 1 {
		t.Errorf("is.nan(NaN) = %v, want 1", got)
	}
}

func TestOpStrings(t *testing.T) {
	if OpAdd.String() != "+" || OpMul.String() != "*" || OpGreaterEqual.String() != ">=" {
		t.Error("unexpected binary op string")
	}
	if OpExp.String() != "exp" || OpSigmoid.String() != "sigmoid" {
		t.Error("unexpected unary op string")
	}
}
