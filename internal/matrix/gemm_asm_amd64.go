package matrix

// gemmMicroAVX2Asm accumulates one 4x4 output tile from packed micro-panels
// with VMULPD+VADDPD lanes (one output cell per lane, k ascending) — bitwise
// identical to the scalar micro-kernel for the same tile. ldb is the row
// stride of c in bytes. Implemented in gemm_amd64.s.
//
//go:noescape
func gemmMicroAVX2Asm(ap, bp *float64, kc int, c *float64, ldb int)

// x86HasAVX2 reports whether the CPU and OS support AVX2 (CPUID + XGETBV).
// Implemented in gemm_amd64.s.
func x86HasAVX2() bool

// gemmAsmAvailable gates the vectorized micro-kernel; when false every tiled
// path runs the (bitwise-identical) scalar micro-kernel.
var gemmAsmAvailable = x86HasAVX2()
