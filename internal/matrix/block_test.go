package matrix

import (
	"math"
	"testing"
)

func TestNewDenseAndSetGet(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5.0)
	if got := m.Get(1, 2); got != 5.0 {
		t.Errorf("Get(1,2) = %v, want 5", got)
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", m.NNZ())
	}
	m.Set(1, 2, 0)
	if m.NNZ() != 0 {
		t.Errorf("NNZ after clearing = %d, want 0", m.NNZ())
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {0, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.Get(2, 1) != 6 {
		t.Errorf("Get(2,1) = %v", m.Get(2, 1))
	}
	if m.NNZ() != 5 {
		t.Errorf("NNZ = %d, want 5", m.NNZ())
	}
}

func TestSparseDenseConversionRoundTrip(t *testing.T) {
	m := FromRows([][]float64{
		{0, 1, 0, 0},
		{2, 0, 0, 3},
		{0, 0, 0, 0},
	})
	orig := m.Copy()
	m.ToSparse()
	if !m.IsSparse() {
		t.Fatal("expected sparse after ToSparse")
	}
	if m.NNZ() != 3 {
		t.Errorf("sparse NNZ = %d, want 3", m.NNZ())
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if m.Get(r, c) != orig.Get(r, c) {
				t.Errorf("cell (%d,%d) = %v, want %v", r, c, m.Get(r, c), orig.Get(r, c))
			}
		}
	}
	m.ToDense()
	if m.IsSparse() {
		t.Fatal("expected dense after ToDense")
	}
	if !m.Equals(orig, 0) {
		t.Error("round trip changed values")
	}
}

func TestSparseSetGet(t *testing.T) {
	m := NewSparse(4, 4)
	m.Set(0, 3, 1)
	m.Set(2, 1, 2)
	m.Set(2, 3, 3)
	m.Set(2, 1, 0) // remove
	if m.Get(0, 3) != 1 || m.Get(2, 3) != 3 {
		t.Errorf("unexpected values: %v %v", m.Get(0, 3), m.Get(2, 3))
	}
	if m.Get(2, 1) != 0 {
		t.Errorf("removed cell = %v, want 0", m.Get(2, 1))
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 1, 1)
	b.Add(1, 0, 2)
	b.Add(1, 2, 3)
	m := b.Build()
	if !m.IsSparse() {
		t.Fatal("builder should produce a sparse block")
	}
	want := FromRows([][]float64{{0, 1, 0}, {2, 0, 3}, {0, 0, 0}})
	if !m.Equals(want, 0) {
		t.Errorf("builder result mismatch:\n%v\nwant\n%v", m, want)
	}
}

func TestExamineAndApplySparsity(t *testing.T) {
	// 10% dense -> should become sparse
	m := NewDense(10, 10)
	for i := 0; i < 10; i++ {
		m.Set(i, i, 1)
	}
	m.ExamineAndApplySparsity()
	if !m.IsSparse() {
		t.Error("10% dense matrix should convert to sparse")
	}
	// mostly dense -> should stay/convert dense
	d := Fill(10, 10, 2.0)
	d.ExamineAndApplySparsity()
	if d.IsSparse() {
		t.Error("fully dense matrix should not convert to sparse")
	}
}

func TestCopyIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Copy()
	c.Set(0, 0, 99)
	if m.Get(0, 0) != 1 {
		t.Error("copy is not independent of original")
	}
}

func TestReshape(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r, err := m.Reshape(3, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !r.Equals(want, 0) {
		t.Errorf("reshape by row mismatch: %v", r)
	}
	if _, err := m.Reshape(4, 2, true); err == nil {
		t.Error("expected error for mismatched cell count")
	}
}

func TestEqualsTolerance(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1.0000001, 2}})
	if a.Equals(b, 0) {
		t.Error("exact equality should fail")
	}
	if !a.Equals(b, 1e-5) {
		t.Error("tolerant equality should pass")
	}
	c := FromRows([][]float64{{math.NaN(), 2}})
	d := FromRows([][]float64{{math.NaN(), 2}})
	if !c.Equals(d, 0) {
		t.Error("NaN cells should compare equal to NaN")
	}
}

func TestInMemorySize(t *testing.T) {
	d := NewDense(100, 100)
	if d.InMemorySize() < 80000 {
		t.Errorf("dense size = %d, want >= 80000", d.InMemorySize())
	}
	s := NewSparse(100, 100)
	if s.InMemorySize() >= d.InMemorySize() {
		t.Errorf("empty sparse size %d should be below dense %d", s.InMemorySize(), d.InMemorySize())
	}
}

func TestSparsity(t *testing.T) {
	m := NewDense(10, 10)
	m.Set(0, 0, 1)
	m.Set(5, 5, 2)
	if got := m.Sparsity(); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("sparsity = %v, want 0.02", got)
	}
}
