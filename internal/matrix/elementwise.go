package matrix

import (
	"fmt"
	"math"
	"sync/atomic"
)

// BinaryOp identifies an element-wise binary operation.
type BinaryOp int

// Supported element-wise binary operations.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
	OpMin
	OpMax
	OpEqual
	OpNotEqual
	OpLess
	OpLessEqual
	OpGreater
	OpGreaterEqual
	OpAnd
	OpOr
	OpModulus
	OpIntDiv
)

// String returns the DML operator symbol for the binary operation.
func (op BinaryOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpPow:
		return "^"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpEqual:
		return "=="
	case OpNotEqual:
		return "!="
	case OpLess:
		return "<"
	case OpLessEqual:
		return "<="
	case OpGreater:
		return ">"
	case OpGreaterEqual:
		return ">="
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpModulus:
		return "%%"
	case OpIntDiv:
		return "%/%"
	default:
		return "?"
	}
}

// Apply evaluates the binary operation on two scalars.
func (op BinaryOp) Apply(a, b float64) float64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	case OpPow:
		return math.Pow(a, b)
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	case OpEqual:
		return boolToF(a == b)
	case OpNotEqual:
		return boolToF(a != b)
	case OpLess:
		return boolToF(a < b)
	case OpLessEqual:
		return boolToF(a <= b)
	case OpGreater:
		return boolToF(a > b)
	case OpGreaterEqual:
		return boolToF(a >= b)
	case OpAnd:
		return boolToF(a != 0 && b != 0)
	case OpOr:
		return boolToF(a != 0 || b != 0)
	case OpModulus:
		return math.Mod(a, b)
	case OpIntDiv:
		return math.Floor(a / b)
	default:
		return math.NaN()
	}
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// binaryOpNames maps DML operator symbols back to kernel operations (inverse
// of BinaryOp.String, shared by the instruction decoder and the HOP-level
// fusion matcher).
var binaryOpNames = map[string]BinaryOp{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "^": OpPow,
	"min": OpMin, "max": OpMax, "==": OpEqual, "!=": OpNotEqual,
	"<": OpLess, "<=": OpLessEqual, ">": OpGreater, ">=": OpGreaterEqual,
	"&": OpAnd, "|": OpOr, "%%": OpModulus, "%/%": OpIntDiv,
}

// BinaryOpFromString resolves a DML binary operator symbol.
func BinaryOpFromString(s string) (BinaryOp, bool) {
	op, ok := binaryOpNames[s]
	return op, ok
}

// unaryOpNames maps DML unary function names back to kernel operations
// ("uminus" is the HOP/instruction spelling of unary minus).
var unaryOpNames = map[string]UnaryOp{
	"uminus": OpNeg, "-": OpNeg, "abs": OpAbs, "exp": OpExp, "log": OpLog,
	"sqrt": OpSqrt, "round": OpRound, "floor": OpFloor, "ceil": OpCeil,
	"sign": OpSign, "!": OpNot, "sin": OpSin, "cos": OpCos, "tan": OpTan,
	"sigmoid": OpSigmoid, "is.nan": OpIsNaN,
}

// UnaryOpFromString resolves a DML unary function name.
func UnaryOpFromString(s string) (UnaryOp, bool) {
	op, ok := unaryOpNames[s]
	return op, ok
}

// UnaryOp identifies an element-wise unary operation.
type UnaryOp int

// Supported element-wise unary operations.
const (
	OpNeg UnaryOp = iota
	OpAbs
	OpExp
	OpLog
	OpSqrt
	OpRound
	OpFloor
	OpCeil
	OpSign
	OpNot
	OpSin
	OpCos
	OpTan
	OpSigmoid
	OpIsNaN
)

// String returns the DML function name of the unary operation.
func (op UnaryOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpAbs:
		return "abs"
	case OpExp:
		return "exp"
	case OpLog:
		return "log"
	case OpSqrt:
		return "sqrt"
	case OpRound:
		return "round"
	case OpFloor:
		return "floor"
	case OpCeil:
		return "ceil"
	case OpSign:
		return "sign"
	case OpNot:
		return "!"
	case OpSin:
		return "sin"
	case OpCos:
		return "cos"
	case OpTan:
		return "tan"
	case OpSigmoid:
		return "sigmoid"
	case OpIsNaN:
		return "is.nan"
	default:
		return "?"
	}
}

// Apply evaluates the unary operation on a scalar.
func (op UnaryOp) Apply(a float64) float64 {
	switch op {
	case OpNeg:
		return -a
	case OpAbs:
		return math.Abs(a)
	case OpExp:
		return math.Exp(a)
	case OpLog:
		return math.Log(a)
	case OpSqrt:
		return math.Sqrt(a)
	case OpRound:
		return math.Round(a)
	case OpFloor:
		return math.Floor(a)
	case OpCeil:
		return math.Ceil(a)
	case OpSign:
		if a > 0 {
			return 1
		} else if a < 0 {
			return -1
		}
		return 0
	case OpNot:
		return boolToF(a == 0)
	case OpSin:
		return math.Sin(a)
	case OpCos:
		return math.Cos(a)
	case OpTan:
		return math.Tan(a)
	case OpSigmoid:
		return 1 / (1 + math.Exp(-a))
	case OpIsNaN:
		return boolToF(math.IsNaN(a))
	default:
		return math.NaN()
	}
}

// elemThreads resolves the worker count of an element-wise kernel: small
// operands stay single-threaded (goroutine overhead dominates).
func elemThreads(threads, cells int) int {
	if cells < parallelMinCells {
		return 1
	}
	return resolveThreads(threads)
}

// ScalarOp applies `m op s` cell-wise (or `s op m` when swap is true) and
// returns a new matrix. The dense path is row-partitioned across threads and
// counts non-zeros during the write loop.
func ScalarOp(m *MatrixBlock, s float64, op BinaryOp, swap bool, threads int) *MatrixBlock {
	// Sparse-safe ops (f(0, s) == 0) can stay sparse when applied to a
	// sparse block; everything else densifies.
	sparseSafe := false
	if !swap && (op == OpMul || op == OpDiv || op == OpIntDiv) {
		sparseSafe = true
	}
	if op == OpMul && swap {
		sparseSafe = true
	}
	if m.IsSparse() && sparseSafe {
		out := m.Copy()
		vals := out.csr().Values
		parallelRows(len(vals), elemThreads(threads, len(vals)), func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				if swap {
					vals[i] = op.Apply(s, vals[i])
				} else {
					vals[i] = op.Apply(vals[i], s)
				}
			}
		})
		out.RecomputeNNZ()
		return out
	}
	src := m
	if src.IsSparse() {
		src = m.Copy().ToDense()
	}
	out := NewDense(m.rows, m.cols)
	var nnz atomic.Int64
	parallelRows(m.rows, elemThreads(threads, m.rows*m.cols), func(r0, r1 int) {
		var n int64
		for i := r0 * m.cols; i < r1*m.cols; i++ {
			v := src.dense[i]
			if swap {
				out.dense[i] = op.Apply(s, v)
			} else {
				out.dense[i] = op.Apply(v, s)
			}
			if out.dense[i] != 0 {
				n++
			}
		}
		nnz.Add(n)
	})
	out.nnz = nnz.Load()
	return out
}

// UnaryApply applies the unary operation cell-wise and returns a new matrix.
// The dense path is row-partitioned across threads and counts non-zeros
// during the write loop.
func UnaryApply(m *MatrixBlock, op UnaryOp, threads int) *MatrixBlock {
	sparseSafe := op == OpNeg || op == OpAbs || op == OpSqrt || op == OpRound ||
		op == OpFloor || op == OpCeil || op == OpSign || op == OpSin || op == OpTan
	if m.IsSparse() && sparseSafe {
		out := m.Copy()
		vals := out.csr().Values
		parallelRows(len(vals), elemThreads(threads, len(vals)), func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				vals[i] = op.Apply(vals[i])
			}
		})
		out.RecomputeNNZ()
		return out
	}
	src := m
	if src.IsSparse() {
		src = m.Copy().ToDense()
	}
	out := NewDense(m.rows, m.cols)
	var nnz atomic.Int64
	parallelRows(m.rows, elemThreads(threads, m.rows*m.cols), func(r0, r1 int) {
		var n int64
		for i := r0 * m.cols; i < r1*m.cols; i++ {
			out.dense[i] = op.Apply(src.dense[i])
			if out.dense[i] != 0 {
				n++
			}
		}
		nnz.Add(n)
	})
	out.nnz = nnz.Load()
	return out
}

// CellwiseOp applies the binary operation cell-wise between two matrices of
// identical shape, or with row/column vector broadcasting when one operand
// is a 1xN row vector or Nx1 column vector matching the other's dimensions
// (mirroring R/DML broadcasting semantics for matrix-vector operations).
func CellwiseOp(a, b *MatrixBlock, op BinaryOp, threads int) (*MatrixBlock, error) {
	// exact shape match
	if a.rows == b.rows && a.cols == b.cols {
		return cellwiseSameDim(a, b, op, threads), nil
	}
	// column vector broadcast: b is a.rows x 1
	if b.rows == a.rows && b.cols == 1 {
		return cellwiseBroadcastCol(a, b, op, false, threads), nil
	}
	// row vector broadcast: b is 1 x a.cols
	if b.cols == a.cols && b.rows == 1 {
		return cellwiseBroadcastRow(a, b, op, false, threads), nil
	}
	// reversed broadcast (vector op matrix)
	if a.rows == b.rows && a.cols == 1 {
		return cellwiseBroadcastCol(b, a, op, true, threads), nil
	}
	if a.cols == b.cols && a.rows == 1 {
		return cellwiseBroadcastRow(b, a, op, true, threads), nil
	}
	return nil, fmt.Errorf("matrix: cellwise op %s dimension mismatch %dx%d vs %dx%d",
		op, a.rows, a.cols, b.rows, b.cols)
}

func cellwiseSameDim(a, b *MatrixBlock, op BinaryOp, threads int) *MatrixBlock {
	ad := a
	if ad.IsSparse() {
		ad = a.Copy().ToDense()
	}
	bd := b
	if bd.IsSparse() {
		bd = b.Copy().ToDense()
	}
	out := NewDense(a.rows, a.cols)
	var nnz atomic.Int64
	parallelRows(a.rows, elemThreads(threads, a.rows*a.cols), func(r0, r1 int) {
		var n int64
		for i := r0 * a.cols; i < r1*a.cols; i++ {
			out.dense[i] = op.Apply(ad.dense[i], bd.dense[i])
			if out.dense[i] != 0 {
				n++
			}
		}
		nnz.Add(n)
	})
	out.nnz = nnz.Load()
	out.ExamineAndApplySparsity()
	return out
}

func cellwiseBroadcastCol(m, v *MatrixBlock, op BinaryOp, swap bool, threads int) *MatrixBlock {
	md := m
	if md.IsSparse() {
		md = m.Copy().ToDense()
	}
	vd := v
	if vd.IsSparse() {
		vd = v.Copy().ToDense()
	}
	out := NewDense(m.rows, m.cols)
	var nnz atomic.Int64
	parallelRows(m.rows, elemThreads(threads, m.rows*m.cols), func(r0, r1 int) {
		var n int64
		for r := r0; r < r1; r++ {
			vv := vd.dense[r]
			base := r * m.cols
			for c := 0; c < m.cols; c++ {
				if swap {
					out.dense[base+c] = op.Apply(vv, md.dense[base+c])
				} else {
					out.dense[base+c] = op.Apply(md.dense[base+c], vv)
				}
				if out.dense[base+c] != 0 {
					n++
				}
			}
		}
		nnz.Add(n)
	})
	out.nnz = nnz.Load()
	out.ExamineAndApplySparsity()
	return out
}

func cellwiseBroadcastRow(m, v *MatrixBlock, op BinaryOp, swap bool, threads int) *MatrixBlock {
	md := m
	if md.IsSparse() {
		md = m.Copy().ToDense()
	}
	vd := v
	if vd.IsSparse() {
		vd = v.Copy().ToDense()
	}
	out := NewDense(m.rows, m.cols)
	var nnz atomic.Int64
	parallelRows(m.rows, elemThreads(threads, m.rows*m.cols), func(r0, r1 int) {
		var n int64
		for r := r0; r < r1; r++ {
			base := r * m.cols
			for c := 0; c < m.cols; c++ {
				vv := vd.dense[c]
				if swap {
					out.dense[base+c] = op.Apply(vv, md.dense[base+c])
				} else {
					out.dense[base+c] = op.Apply(md.dense[base+c], vv)
				}
				if out.dense[base+c] != 0 {
					n++
				}
			}
		}
		nnz.Add(n)
	})
	out.nnz = nnz.Load()
	out.ExamineAndApplySparsity()
	return out
}

// Ternary computes ifelse(cond, a, b) cell-wise where cond, a, b may be
// matrices of the same shape or scalars (represented as 1x1 matrices).
func Ternary(cond, a, b *MatrixBlock) (*MatrixBlock, error) {
	rows, cols := cond.rows, cond.cols
	get := func(m *MatrixBlock, r, c int) float64 {
		if m.rows == 1 && m.cols == 1 {
			return m.Get(0, 0)
		}
		return m.Get(r, c)
	}
	for _, m := range []*MatrixBlock{a, b} {
		if (m.rows != rows || m.cols != cols) && !(m.rows == 1 && m.cols == 1) {
			return nil, fmt.Errorf("matrix: ifelse operand shape %dx%d does not match condition %dx%d", m.rows, m.cols, rows, cols)
		}
	}
	out := NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if get(cond, r, c) != 0 {
				out.Set(r, c, get(a, r, c))
			} else {
				out.Set(r, c, get(b, r, c))
			}
		}
	}
	return out, nil
}
