package matrix

import "testing"

func TestTransposeDense(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := Transpose(m)
	want := FromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !got.Equals(want, 0) {
		t.Errorf("transpose = %v, want %v", got, want)
	}
}

func TestTransposeSparse(t *testing.T) {
	m := RandUniform(40, 25, 0, 1, 0.15, 21)
	if !m.IsSparse() {
		t.Fatal("expected sparse input")
	}
	got := Transpose(m)
	want := Transpose(m.Copy().ToDense())
	if !got.Equals(want, 0) {
		t.Error("sparse transpose disagrees with dense transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := RandUniform(17, 29, -5, 5, 1.0, 22)
	if !Transpose(Transpose(m)).Equals(m, 0) {
		t.Error("t(t(X)) != X")
	}
}

func TestDiag(t *testing.T) {
	v := FromRows([][]float64{{1}, {2}, {3}})
	d, err := Diag(v)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 3 || d.Cols() != 3 || d.Get(1, 1) != 2 || d.Get(0, 1) != 0 {
		t.Errorf("diag(v) = %v", d)
	}
	back, err := Diag(d.Copy().ToDense())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equals(v, 0) {
		t.Errorf("diag(diag(v)) = %v, want %v", back, v)
	}
	if _, err := Diag(NewDense(2, 3)); err == nil {
		t.Error("expected error for non-square non-vector input")
	}
}

func TestReverse(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := Reverse(m)
	want := FromRows([][]float64{{5, 6}, {3, 4}, {1, 2}})
	if !got.Equals(want, 0) {
		t.Errorf("reverse = %v", got)
	}
}

func TestCBindRBind(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5}, {6}})
	cb, err := CBind(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantCB := FromRows([][]float64{{1, 2, 5}, {3, 4, 6}})
	if !cb.Equals(wantCB, 0) {
		t.Errorf("cbind = %v", cb)
	}
	c := FromRows([][]float64{{7, 8}})
	rb, err := RBind(a, c)
	if err != nil {
		t.Fatal(err)
	}
	wantRB := FromRows([][]float64{{1, 2}, {3, 4}, {7, 8}})
	if !rb.Equals(wantRB, 0) {
		t.Errorf("rbind = %v", rb)
	}
	if _, err := CBind(a, FromRows([][]float64{{1}})); err == nil {
		t.Error("expected cbind row mismatch error")
	}
	if _, err := RBind(a, FromRows([][]float64{{1}})); err == nil {
		t.Error("expected rbind column mismatch error")
	}
}

func TestSlice(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s, err := Slice(m, 1, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equals(want, 0) {
		t.Errorf("slice = %v", s)
	}
	if _, err := Slice(m, 0, 4, 0, 1); err == nil {
		t.Error("expected out of bounds error")
	}
	// sparse path
	sp := m.Copy().ToSparse()
	s2, err := Slice(sp, 1, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Equals(want, 0) {
		t.Errorf("sparse slice = %v", s2)
	}
}

func TestLeftIndex(t *testing.T) {
	m := NewDense(3, 3)
	src := FromRows([][]float64{{1, 2}, {3, 4}})
	got, err := LeftIndex(m, src, 1, 3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(1, 1) != 1 || got.Get(2, 2) != 4 || got.Get(0, 0) != 0 {
		t.Errorf("left index result = %v", got)
	}
	// original unchanged
	if m.Get(1, 1) != 0 {
		t.Error("LeftIndex mutated its target")
	}
	if _, err := LeftIndex(m, src, 2, 4, 0, 2); err == nil {
		t.Error("expected out of bounds error")
	}
	if _, err := LeftIndex(m, src, 0, 1, 0, 1); err == nil {
		t.Error("expected shape mismatch error")
	}
}

func TestRemoveEmpty(t *testing.T) {
	m := FromRows([][]float64{{1, 0, 2}, {0, 0, 0}, {3, 0, 4}})
	rows, err := RemoveEmpty(m, "rows")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Rows() != 2 || rows.Get(1, 2) != 4 {
		t.Errorf("removeEmpty rows = %v", rows)
	}
	cols, err := RemoveEmpty(m, "cols")
	if err != nil {
		t.Fatal(err)
	}
	if cols.Cols() != 2 || cols.Get(2, 1) != 4 {
		t.Errorf("removeEmpty cols = %v", cols)
	}
	if _, err := RemoveEmpty(m, "diag"); err == nil {
		t.Error("expected error for invalid margin")
	}
}

func TestOrder(t *testing.T) {
	m := FromRows([][]float64{{3, 30}, {1, 10}, {2, 20}})
	sorted, err := Order(m, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{1, 10}, {2, 20}, {3, 30}})
	if !sorted.Equals(want, 0) {
		t.Errorf("order = %v", sorted)
	}
	idx, err := Order(m, 0, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Get(0, 0) != 1 || idx.Get(1, 0) != 3 || idx.Get(2, 0) != 2 {
		t.Errorf("order index = %v", idx)
	}
	if _, err := Order(m, 5, false, false); err == nil {
		t.Error("expected error for out of range column")
	}
}

func TestSelectRows(t *testing.T) {
	m := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	idx := FromRows([][]float64{{3}, {1}})
	got, err := SelectRows(m, idx)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{3, 3}, {1, 1}})
	if !got.Equals(want, 0) {
		t.Errorf("SelectRows = %v", got)
	}
	if _, err := SelectRows(m, FromRows([][]float64{{9}})); err == nil {
		t.Error("expected out of bounds error")
	}
}
