package matrix

import (
	"sync"
	"sync/atomic"
)

// This file implements the register-blocked, cache-tiled dense GEMM engine
// (DESIGN.md, "Dense GEMM micro-kernel"). The engine is a classic three-level
// blocked loop nest over a fixed-size micro-kernel:
//
//   - micro-kernel: a gemmMR x gemmNR output tile held in locals (the Go
//     compiler keeps them in registers), fully unrolled over the tile, with
//     the k loop ascending so every output cell accumulates its contributions
//     in ascending-k order — the same per-cell order as the simple blocked
//     kernel in mult.go, which is what makes the two kernels bitwise
//     interchangeable and preserves the MultiplyAcc stripe-accumulation
//     contract of the blocked shuffle/broadcast-left executors.
//   - panel packing: A row panels (gemmMR x kc, k-major) and B column panels
//     (kc x gemmNR, k-major) are copied into contiguous scratch buffers so the
//     micro-kernel streams both operands sequentially. Ragged edges are packed
//     zero-padded to full tile width/height; the padded lanes compute into
//     scratch accumulators that are never stored, so tails need no separate
//     kernel shape.
//   - outer blocking: jc (gemmNC column block) -> pc (gemmKC depth block) ->
//     ic (gemmMC row block) -> jr/ir micro-tiles, so the packed A block stays
//     L2-resident while each kc x gemmNR B micro-panel stays L1-resident
//     across the ir sweep.
//
// Multi-threading partitions rows across workers (parallelRows); output cells
// are disjoint per worker and each cell's accumulation order is fixed, so
// results are identical for every thread count. All pack buffers come from a
// sync.Pool — steady-state operation allocates nothing beyond the output
// block.

// Tile-size parameters of the tiled GEMM engine. gemmMR x gemmNR is the
// register tile (16 accumulator locals); gemmKC is the depth of one packed
// panel pass (A micro-panel gemmMR*gemmKC*8 = 8KB, B micro-panel 8KB — both
// L1-resident); gemmMC rows of packed A (gemmMC*gemmKC*8 = 256KB,
// L2-resident); gemmNC bounds the column block streamed per packed-A reuse.
const (
	gemmMR = 4
	gemmNR = 4
	gemmKC = 256
	gemmMC = 128
	gemmNC = 4096
)

// gemmPackARows is the padded row capacity of one packed A block.
const gemmPackARows = (gemmMC + gemmMR - 1) / gemmMR * gemmMR

// TiledGEMMCrossoverFLOPs is the matmult size (in FLOPs, 2*m*k*n) above which
// the dense kernels switch from the simple blocked loop to the tiled engine;
// below it the packing overhead dominates. internal/hops/cost.go references
// the same constant so EXPLAIN output labels the kernel class the runtime
// will pick from one shared number.
const TiledGEMMCrossoverFLOPs = 2 * 128 * 128 * 128

// GEMMKernel selects the dense GEMM kernel implementation.
type GEMMKernel int32

// Dense kernel selection modes: GEMMAuto picks the tiled engine above
// TiledGEMMCrossoverFLOPs and the simple blocked loop below it; GEMMSimple and
// GEMMTiled force one implementation (tests and benchmarks).
const (
	GEMMAuto GEMMKernel = iota
	GEMMSimple
	GEMMTiled
)

var gemmKernelMode atomic.Int32

// SetGEMMKernel overrides the dense kernel selection and returns the previous
// mode. The forced kernels are bitwise-interchangeable for finite inputs
// (identical per-cell accumulation order); the knob exists so tests can pin
// both paths against each other and benchmarks can time each kernel at any
// size.
func SetGEMMKernel(k GEMMKernel) GEMMKernel {
	return GEMMKernel(gemmKernelMode.Swap(int32(k)))
}

// gemmUseTiled decides whether an m x k %*% k x n dense multiply runs on the
// tiled engine.
func gemmUseTiled(m, k, n int) bool {
	switch GEMMKernel(gemmKernelMode.Load()) {
	case GEMMSimple:
		return false
	case GEMMTiled:
		return true
	}
	if m < gemmMR || n < gemmNR {
		// degenerate shapes (vectors, outer products) waste most of every
		// padded tile; the simple loop streams them better
		return false
	}
	return 2*float64(m)*float64(k)*float64(n) >= TiledGEMMCrossoverFLOPs
}

// tsmmUseTiled decides whether a TSMM chunk of `rows` rows over n columns
// runs on the tiled engine (flops ~ 2*rows*n*n over the full square).
func tsmmUseTiled(rows, n int) bool {
	switch GEMMKernel(gemmKernelMode.Load()) {
	case GEMMSimple:
		return false
	case GEMMTiled:
		return true
	}
	if n < gemmNR {
		return false
	}
	return 2*float64(rows)*float64(n)*float64(n) >= TiledGEMMCrossoverFLOPs
}

// --- pooled pack buffers ----------------------------------------------------

// gemmBuf is a pooled float64 scratch buffer for packed panels and TSMM
// partials.
type gemmBuf struct{ f []float64 }

var gemmPool sync.Pool

// gemmGetBuf returns a pooled buffer of exactly size elements. The contents
// are unspecified; pack routines overwrite every element they read back.
func gemmGetBuf(size int) *gemmBuf {
	b, _ := gemmPool.Get().(*gemmBuf)
	if b == nil {
		b = &gemmBuf{}
	}
	if cap(b.f) < size {
		b.f = make([]float64, size)
	}
	b.f = b.f[:size]
	return b
}

func gemmPutBuf(b *gemmBuf) { gemmPool.Put(b) }

// gemmZeroBuf returns a pooled buffer of size elements, zeroed.
func gemmZeroBuf(size int) *gemmBuf {
	b := gemmGetBuf(size)
	clear(b.f)
	return b
}

// Scratch is a pooled float64 work buffer handed out by GetScratch. It shares
// the GEMM panel pool, so higher layers (e.g. compressed kernels decompressing
// stripes for a fallback multiply, or pre-scaling dictionaries against a
// matrix right-hand side) reuse warm buffers instead of allocating a fresh
// dense block per call site.
type Scratch struct{ b *gemmBuf }

// Values returns the buffer contents (zeroed, length as requested).
func (s Scratch) Values() []float64 { return s.b.f }

// GetScratch returns a zeroed pooled buffer of n elements. Release it with
// PutScratch when done; the contents are invalid afterwards.
func GetScratch(n int) Scratch { return Scratch{b: gemmZeroBuf(n)} }

// PutScratch returns the buffer to the pool.
func PutScratch(s Scratch) {
	if s.b != nil {
		gemmPutBuf(s.b)
	}
}

// --- panel packing ----------------------------------------------------------

// packBPanels packs a rows x cols row-major matrix into gemmNR-wide column
// panels: dst[jp*rows*gemmNR + p*gemmNR + jj] = b[p*cols + jp*gemmNR + jj],
// with the ragged last panel zero-padded to gemmNR. dst must hold
// ceil(cols/gemmNR)*gemmNR*rows elements.
func packBPanels(dst, b []float64, rows, cols int) {
	np := (cols + gemmNR - 1) / gemmNR
	for jp := 0; jp < np; jp++ {
		j0 := jp * gemmNR
		w := min(gemmNR, cols-j0)
		panel := dst[jp*rows*gemmNR : (jp+1)*rows*gemmNR]
		if w == gemmNR {
			for p := 0; p < rows; p++ {
				src := b[p*cols+j0 : p*cols+j0+gemmNR]
				d := panel[p*gemmNR : p*gemmNR+gemmNR]
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			}
			continue
		}
		for p := 0; p < rows; p++ {
			d := panel[p*gemmNR : p*gemmNR+gemmNR]
			for jj := 0; jj < w; jj++ {
				d[jj] = b[p*cols+j0+jj]
			}
			for jj := w; jj < gemmNR; jj++ {
				d[jj] = 0
			}
		}
	}
}

// packAPanels packs rows [r0, r0+mc) x cols [p0, p0+kc) of the row-major
// m x lda matrix a into gemmMR-high row panels, k-major:
// dst[(ir/gemmMR)*kc*gemmMR + p*gemmMR + rr] = a[(r0+ir+rr)*lda + p0 + p],
// zero-padding the ragged last panel to gemmMR rows.
func packAPanels(dst, a []float64, lda, r0, mc, p0, kc int) {
	for ir := 0; ir < mc; ir += gemmMR {
		h := min(gemmMR, mc-ir)
		panel := dst[(ir/gemmMR)*kc*gemmMR:]
		for rr := 0; rr < h; rr++ {
			src := a[(r0+ir+rr)*lda+p0 : (r0+ir+rr)*lda+p0+kc]
			for p := 0; p < kc; p++ {
				panel[p*gemmMR+rr] = src[p]
			}
		}
		for rr := h; rr < gemmMR; rr++ {
			for p := 0; p < kc; p++ {
				panel[p*gemmMR+rr] = 0
			}
		}
	}
}

// packATPanels packs the transpose of rows [p0, p0+kc) x cols [c0, c0+mc) of
// the row-major matrix x (leading dimension n) into gemmMR-high row panels of
// X^T, k-major — the A-side packing of the TSMM kernel, reading X column
// panels without materializing the transpose.
func packATPanels(dst, x []float64, n, p0, kc, c0, mc int) {
	for ir := 0; ir < mc; ir += gemmMR {
		h := min(gemmMR, mc-ir)
		panel := dst[(ir/gemmMR)*kc*gemmMR:]
		for p := 0; p < kc; p++ {
			src := x[(p0+p)*n+c0+ir:]
			d := panel[p*gemmMR : p*gemmMR+gemmMR]
			for rr := 0; rr < h; rr++ {
				d[rr] = src[rr]
			}
			for rr := h; rr < gemmMR; rr++ {
				d[rr] = 0
			}
		}
	}
}

// --- micro-kernel -----------------------------------------------------------

// gemmMicroTile accumulates one gemmMR x gemmNR output tile (origin ci, row
// stride ldc) from k-major packed micro-panels. On CPUs with a vector kernel
// it dispatches to assembly (one output cell per lane, identical
// mul-round/add-round sequence); otherwise it runs the scalar register
// kernel. Both paths accumulate every cell in ascending-k order and round
// after the multiply and after the add, so they are bitwise interchangeable.
func gemmMicroTile(ap, bp []float64, kc int, cv []float64, ci, ldc int) {
	if gemmAsmAvailable {
		gemmMicroAVX2Asm(&ap[0], &bp[0], kc, &cv[ci], ldc*8)
		return
	}
	gemmMicro4x4(ap, bp, kc, cv, ci, ldc)
}

// gemmMicro4x4 is the portable scalar micro-kernel: the 4x4 tile is computed
// as two sequential 4x2 half-tiles so the eight live accumulators (plus six
// operand temporaries) fit the 16 SSE registers without spilling — a full
// 4x4 accumulator set spills ~half its state to the stack every iteration.
// Each output cell still sees its contributions in ascending-k order, so the
// half-tile split does not perturb any bit of the result.
func gemmMicro4x4(ap, bp []float64, kc int, cv []float64, ci, ldc int) {
	gemmMicro4x2(ap, bp, kc, cv, ci, ldc)
	gemmMicro4x2(ap, bp[2:], kc, cv, ci+2, ldc)
}

// gemmMicro4x2 accumulates a 4-row x 2-col half-tile; bp points at the first
// of the two packed B columns (panel stride stays gemmNR).
func gemmMicro4x2(ap, bp []float64, kc int, cv []float64, ci, ldc int) {
	r1, r2, r3 := ci+ldc, ci+2*ldc, ci+3*ldc
	c00, c01 := cv[ci], cv[ci+1]
	c10, c11 := cv[r1], cv[r1+1]
	c20, c21 := cv[r2], cv[r2+1]
	c30, c31 := cv[r3], cv[r3+1]
	for p := 0; p < kc; p++ {
		av := ap[p*gemmMR : p*gemmMR+gemmMR]
		bv := bp[p*gemmNR : p*gemmNR+2]
		a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
		b0, b1 := bv[0], bv[1]
		c00 += float64(a0 * b0)
		c01 += float64(a0 * b1)
		c10 += float64(a1 * b0)
		c11 += float64(a1 * b1)
		c20 += float64(a2 * b0)
		c21 += float64(a2 * b1)
		c30 += float64(a3 * b0)
		c31 += float64(a3 * b1)
	}
	cv[ci], cv[ci+1] = c00, c01
	cv[r1], cv[r1+1] = c10, c11
	cv[r2], cv[r2+1] = c20, c21
	cv[r3], cv[r3+1] = c30, c31
}

// gemmMicroEdge handles ragged tiles (h < gemmMR rows and/or w < gemmNR
// cols): the live h x w corner of the output is staged into a full stack
// tile, the unrolled micro-kernel runs on it (padded pack lanes contribute
// only to discarded scratch cells), and the live corner is stored back. The
// staged cells see exactly the same load-accumulate-store sequence as an
// interior tile, so edges are bitwise-identical to a non-tiled evaluation.
func gemmMicroEdge(ap, bp []float64, kc int, cv []float64, ci, ldc, h, w int) {
	var tile [gemmMR * gemmNR]float64
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			tile[r*gemmNR+c] = cv[ci+r*ldc+c]
		}
	}
	gemmMicroTile(ap, bp, kc, tile[:], 0, gemmNR)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			cv[ci+r*ldc+c] = tile[r*gemmNR+c]
		}
	}
}

// --- tiled GEMM driver ------------------------------------------------------

// gemmTiledRows accumulates rows [r0, r1) of a %*% b into cv through the
// jc/pc/ic blocked loop nest. bpack is the fully packed B (k-high gemmNR
// panels), apack the caller's packed-A scratch (gemmPackARows*gemmKC). Every
// output cell is visited once per pc block with pc ascending, so its
// contributions arrive in ascending-k order.
func gemmTiledRows(cv, av, bpack, apack []float64, k, n, r0, r1 int) {
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			for ic := r0; ic < r1; ic += gemmMC {
				mc := min(gemmMC, r1-ic)
				packAPanels(apack, av, k, ic, mc, pc, kc)
				for jr := jc; jr < jc+nc; jr += gemmNR {
					w := min(gemmNR, n-jr)
					bpanel := bpack[(jr/gemmNR)*k*gemmNR+pc*gemmNR:]
					for ir := 0; ir < mc; ir += gemmMR {
						h := min(gemmMR, mc-ir)
						apanel := apack[(ir/gemmMR)*kc*gemmMR:]
						ci := (ic+ir)*n + jr
						if h == gemmMR && w == gemmNR {
							gemmMicroTile(apanel, bpanel, kc, cv, ci, n)
						} else {
							gemmMicroEdge(apanel, bpanel, kc, cv, ci, n, h, w)
						}
					}
				}
			}
		}
	}
}

// accDenseDenseTiled accumulates dense(a) %*% dense(b) into the dense
// accumulator via the tiled engine and returns the recounted non-zero total.
// Bitwise-interchangeable with accDenseDense for finite inputs: both add each
// cell's contributions one at a time in ascending k (the simple kernel skips
// a==0 terms, which cannot change a finite running sum).
func accDenseDenseTiled(acc, a, b *MatrixBlock, threads int) int64 {
	m, k, n := a.rows, a.cols, b.cols
	av, bv, cv := a.dense, b.dense, acc.dense
	if m == 0 || n == 0 {
		return 0
	}
	np := (n + gemmNR - 1) / gemmNR
	bbuf := gemmGetBuf(np * gemmNR * k)
	packBPanels(bbuf.f, bv, k, n)
	var nnz atomic.Int64
	parallelRows(m, threads, func(r0, r1 int) {
		abuf := gemmGetBuf(gemmPackARows * gemmKC)
		gemmTiledRows(cv, av, bbuf.f, abuf.f, k, n, r0, r1)
		gemmPutBuf(abuf)
		nnz.Add(countRowRangeNNZ(cv, n, r0, r1))
	})
	gemmPutBuf(bbuf)
	return nnz.Load()
}

// tsmmTiledChunk accumulates the upper triangle of t(Xc) %*% Xc into buf,
// where Xc is rows [r0, r1) of the row-major m x n matrix x — the tiled
// counterpart of tsmmSimpleChunk with the identical per-cell ascending-row
// accumulation order. Tiles straddling the diagonal are computed in full;
// their below-diagonal cells hold partial garbage that the caller's mirror
// pass overwrites. B panels are packed per gemmKC row block (bounding the
// pack buffer at ceil(n/gemmNR)*gemmNR*gemmKC) and the A side packs X column
// panels transposed in place.
func tsmmTiledChunk(buf, x []float64, n, r0, r1 int) {
	abuf := gemmGetBuf(gemmPackARows * gemmKC)
	np := (n + gemmNR - 1) / gemmNR
	bbuf := gemmGetBuf(np * gemmNR * gemmKC)
	for pc := r0; pc < r1; pc += gemmKC {
		kc := min(gemmKC, r1-pc)
		packBPanels(bbuf.f, x[pc*n:], kc, n)
		for ic := 0; ic < n; ic += gemmMC {
			mc := min(gemmMC, n-ic)
			packATPanels(abuf.f, x, n, pc, kc, ic, mc)
			for jr := 0; jr < n; jr += gemmNR {
				w := min(gemmNR, n-jr)
				// tiles entirely below the diagonal (j_max < i_min) are
				// mirrored later, never computed
				irLim := jr + w - ic
				if irLim > mc {
					irLim = mc
				}
				if irLim <= 0 {
					continue
				}
				bpanel := bbuf.f[(jr/gemmNR)*kc*gemmNR:]
				for ir := 0; ir < irLim; ir += gemmMR {
					h := min(gemmMR, mc-ir)
					apanel := abuf.f[(ir/gemmMR)*kc*gemmMR:]
					ci := (ic+ir)*n + jr
					if h == gemmMR && w == gemmNR {
						gemmMicroTile(apanel, bpanel, kc, buf, ci, n)
					} else {
						gemmMicroEdge(apanel, bpanel, kc, buf, ci, n, h, w)
					}
				}
			}
		}
	}
	gemmPutBuf(bbuf)
	gemmPutBuf(abuf)
}
