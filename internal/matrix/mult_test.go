package matrix

import (
	"testing"
)

func TestMultiplySmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Multiply(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equals(want, 1e-12) {
		t.Errorf("product = %v, want %v", c, want)
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := Multiply(a, b, 1); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestMultiplyKernelsAgree(t *testing.T) {
	a := RandUniform(37, 23, -1, 1, 1.0, 7)
	b := RandUniform(23, 19, -1, 1, 1.0, 8)
	dense, err := Multiply(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	blas, err := MultiplyBLAS(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equals(blas, 1e-9) {
		t.Error("BLAS-like kernel disagrees with standard kernel")
	}

	as := a.Copy().ToSparse()
	sd, err := Multiply(as, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equals(sd, 1e-9) {
		t.Error("sparse-dense kernel disagrees with dense kernel")
	}

	bs := b.Copy().ToSparse()
	ds, err := Multiply(a, bs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equals(ds, 1e-9) {
		t.Error("dense-sparse kernel disagrees with dense kernel")
	}

	ss, err := Multiply(as, bs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equals(ss, 1e-9) {
		t.Error("sparse-sparse kernel disagrees with dense kernel")
	}
}

func TestMultiplySparseInputs(t *testing.T) {
	a := RandUniform(50, 40, 0, 1, 0.1, 11)
	b := RandUniform(40, 30, 0, 1, 0.1, 12)
	if !a.IsSparse() || !b.IsSparse() {
		t.Fatal("expected sparse generated inputs")
	}
	got, err := Multiply(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Multiply(a.Copy().ToDense(), b.Copy().ToDense(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(want, 1e-9) {
		t.Error("sparse multiply disagrees with dense reference")
	}
}

func TestMultiplyParallelMatchesSingleThread(t *testing.T) {
	a := RandUniform(64, 48, -2, 2, 1.0, 3)
	b := RandUniform(48, 32, -2, 2, 1.0, 4)
	single, _ := Multiply(a, b, 1)
	multi, _ := Multiply(a, b, 8)
	if !single.Equals(multi, 1e-10) {
		t.Error("multi-threaded result differs from single-threaded")
	}
}

func TestTSMM(t *testing.T) {
	x := RandUniform(40, 12, -1, 1, 1.0, 5)
	got := TSMM(x, 4)
	xt := Transpose(x)
	want, err := Multiply(xt, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(want, 1e-9) {
		t.Error("TSMM disagrees with explicit t(X) * X")
	}
	// result must be symmetric
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			if got.Get(i, j) != got.Get(j, i) {
				t.Fatalf("TSMM result not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestTSMMSparse(t *testing.T) {
	x := RandUniform(60, 15, 0, 1, 0.15, 6)
	if !x.IsSparse() {
		t.Fatal("expected sparse input")
	}
	got := TSMM(x, 4)
	want, err := Multiply(Transpose(x.Copy().ToDense()), x.Copy().ToDense(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(want, 1e-9) {
		t.Error("sparse TSMM disagrees with dense reference")
	}
}

func TestMatVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := FromRows([][]float64{{1}, {0}, {-1}})
	got, err := MatVec(a, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{-2}, {-2}})
	if !got.Equals(want, 1e-12) {
		t.Errorf("matvec = %v, want %v", got, want)
	}
	if _, err := MatVec(a, FromRows([][]float64{{1, 2}}), 1); err == nil {
		t.Error("expected error for non column-vector input")
	}
}

func TestMultiplyIdentity(t *testing.T) {
	a := RandUniform(20, 20, -1, 1, 1.0, 9)
	id := Identity(20)
	left, _ := Multiply(id, a, 2)
	right, _ := Multiply(a, id, 2)
	if !left.Equals(a, 1e-12) || !right.Equals(a, 1e-12) {
		t.Error("identity multiplication changed the matrix")
	}
}

func TestMultiplyEmptyOperand(t *testing.T) {
	a := NewDense(4, 3) // all zeros
	b := RandUniform(3, 5, -1, 1, 1.0, 13)
	c, err := Multiply(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 {
		t.Errorf("zero matrix product has nnz = %d", c.NNZ())
	}
}

// TestMultiplyAccStripesBitwise verifies the multiply-accumulate contract the
// shuffle-style blocked matmult relies on: accumulating k-stripes in
// ascending order reproduces the one-shot multiply bitwise.
func TestMultiplyAccStripesBitwise(t *testing.T) {
	const m, k, n, stripe = 37, 200, 23, 48
	a := RandUniform(m, k, -1, 1, 1.0, 61)
	b := RandUniform(k, n, -1, 1, 1.0, 62)
	want, err := Multiply(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewDense(m, n)
	for k0 := 0; k0 < k; k0 += stripe {
		k1 := min(k0+stripe, k)
		as, err := Slice(a, 0, m, k0, k1)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := Slice(b, k0, k1, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := MultiplyAcc(acc, as, bs, 2); err != nil {
			t.Fatal(err)
		}
	}
	if !want.Equals(acc, 0) {
		t.Error("stripe-accumulated product is not bitwise-equal to one multiply")
	}
	if want.NNZ() != acc.NNZ() {
		t.Errorf("nnz = %d, want %d", acc.NNZ(), want.NNZ())
	}
}

func TestMultiplyAccErrors(t *testing.T) {
	a, b := NewDense(4, 5), NewDense(6, 3)
	if err := MultiplyAcc(NewDense(4, 3), a, b, 1); err == nil {
		t.Error("inner dimension mismatch not rejected")
	}
	if err := MultiplyAcc(NewDense(3, 3), a, NewDense(5, 3), 1); err == nil {
		t.Error("accumulator shape mismatch not rejected")
	}
}

// TestMultiplyAccSparseInputs checks the densified sparse path agrees with
// the dense kernel on the same values.
func TestMultiplyAccSparseInputs(t *testing.T) {
	a := RandUniform(30, 40, -1, 1, 0.1, 63).ToSparse()
	b := RandUniform(40, 20, -1, 1, 0.1, 64).ToSparse()
	acc := NewDense(30, 20)
	if err := MultiplyAcc(acc, a, b, 1); err != nil {
		t.Fatal(err)
	}
	want, err := Multiply(a.Copy().ToDense(), b.Copy().ToDense(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equals(acc, 0) {
		t.Error("sparse-input multiply-acc differs from the dense kernel")
	}
}
