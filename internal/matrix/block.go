// Package matrix implements the dense and sparse matrix blocks and the
// multi-threaded linear algebra kernels that form the numerical substrate of
// SystemDS-Go. A MatrixBlock corresponds to SystemDS' MatrixBlock/TensorBlock
// for the 2D FP64 case: it either holds a dense row-major array or a CSR
// sparse representation, and operations choose kernels based on the present
// sparsity (lesson L1 of the paper: physical data independence).
package matrix

import (
	"fmt"
	"math"
)

// SparseThreshold is the sparsity (nnz/cells) below which blocks prefer the
// sparse CSR representation.
const SparseThreshold = 0.4

// MatrixBlock is a two-dimensional FP64 block in either dense (row-major) or
// sparse (CSR) representation. The zero value is an empty 0x0 matrix.
type MatrixBlock struct {
	rows, cols int
	dense      []float64 // row-major, nil when sparse
	sparse     *CSR      // nil when dense
	nnz        int64
}

// NewDense allocates a dense rows x cols matrix of zeros.
func NewDense(rows, cols int) *MatrixBlock {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	return &MatrixBlock{rows: rows, cols: cols, dense: make([]float64, rows*cols)}
}

// NewDenseFromSlice wraps an existing row-major slice of length rows*cols.
// The slice is not copied.
func NewDenseFromSlice(rows, cols int, data []float64) *MatrixBlock {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: slice length %d does not match %dx%d", len(data), rows, cols))
	}
	m := &MatrixBlock{rows: rows, cols: cols, dense: data}
	m.RecomputeNNZ()
	return m
}

// NewSparse allocates an empty sparse rows x cols matrix.
func NewSparse(rows, cols int) *MatrixBlock {
	return &MatrixBlock{rows: rows, cols: cols, sparse: NewCSR(rows, cols)}
}

// FromRows builds a dense matrix from a slice of row slices. All rows must
// have the same length.
func FromRows(rows [][]float64) *MatrixBlock {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: ragged rows")
		}
		copy(m.dense[i*c:(i+1)*c], row)
	}
	m.RecomputeNNZ()
	return m
}

// Rows returns the number of rows.
func (m *MatrixBlock) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *MatrixBlock) Cols() int { return m.cols }

// NNZ returns the tracked number of non-zero values.
func (m *MatrixBlock) NNZ() int64 { return m.nnz }

// IsSparse reports whether the block is in sparse representation.
func (m *MatrixBlock) IsSparse() bool { return m.sparse != nil }

// IsEmpty reports whether the block has no non-zero values.
func (m *MatrixBlock) IsEmpty() bool { return m.nnz == 0 }

// Sparsity returns nnz / (rows*cols), or 0 for empty matrices.
func (m *MatrixBlock) Sparsity() float64 {
	cells := int64(m.rows) * int64(m.cols)
	if cells == 0 {
		return 0
	}
	return float64(m.nnz) / float64(cells)
}

// DenseValues returns the dense row-major backing slice, converting the block
// to dense representation if necessary.
func (m *MatrixBlock) DenseValues() []float64 {
	m.ToDense()
	return m.dense
}

// Get returns the value at (r, c).
func (m *MatrixBlock) Get(r, c int) float64 {
	m.checkIndex(r, c)
	if m.sparse != nil {
		return m.sparse.Get(r, c)
	}
	return m.dense[r*m.cols+c]
}

// Set assigns the value at (r, c), updating the non-zero count.
func (m *MatrixBlock) Set(r, c int, v float64) {
	m.checkIndex(r, c)
	if m.sparse != nil {
		old := m.sparse.Get(r, c)
		m.sparse.Set(r, c, v)
		m.nnz += deltaNNZ(old, v)
		return
	}
	idx := r*m.cols + c
	old := m.dense[idx]
	m.dense[idx] = v
	m.nnz += deltaNNZ(old, v)
}

func deltaNNZ(old, new float64) int64 {
	switch {
	case old == 0 && new != 0:
		return 1
	case old != 0 && new == 0:
		return -1
	default:
		return 0
	}
}

func (m *MatrixBlock) checkIndex(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of bounds %dx%d", r, c, m.rows, m.cols))
	}
}

// RecomputeNNZ recounts the non-zero values and updates the tracked count.
func (m *MatrixBlock) RecomputeNNZ() int64 {
	if m.sparse != nil {
		m.nnz = m.sparse.NNZ()
		return m.nnz
	}
	var n int64
	for _, v := range m.dense {
		if v != 0 {
			n++
		}
	}
	m.nnz = n
	return n
}

// ToDense converts the block to dense representation in place.
func (m *MatrixBlock) ToDense() *MatrixBlock {
	if m.sparse == nil {
		if m.dense == nil {
			m.dense = make([]float64, m.rows*m.cols)
		}
		return m
	}
	d := make([]float64, m.rows*m.cols)
	s := m.csr()
	for r := 0; r < m.rows; r++ {
		for p := s.RowPtr[r]; p < s.RowPtr[r+1]; p++ {
			d[r*m.cols+s.ColIdx[p]] = s.Values[p]
		}
	}
	m.dense = d
	m.sparse = nil
	return m
}

// ToSparse converts the block to CSR sparse representation in place.
func (m *MatrixBlock) ToSparse() *MatrixBlock {
	if m.sparse != nil {
		return m
	}
	s := NewCSR(m.rows, m.cols)
	s.RowPtr = make([]int, m.rows+1)
	nnz := 0
	for i, v := range m.dense {
		_ = i
		if v != 0 {
			nnz++
		}
	}
	s.ColIdx = make([]int, 0, nnz)
	s.Values = make([]float64, 0, nnz)
	for r := 0; r < m.rows; r++ {
		s.RowPtr[r] = len(s.Values)
		base := r * m.cols
		for c := 0; c < m.cols; c++ {
			if v := m.dense[base+c]; v != 0 {
				s.ColIdx = append(s.ColIdx, c)
				s.Values = append(s.Values, v)
			}
		}
	}
	s.RowPtr[m.rows] = len(s.Values)
	m.sparse = s
	m.dense = nil
	m.nnz = int64(nnz)
	return m
}

// ExamineAndApplySparsity converts the block to the representation (dense or
// sparse) that matches its current sparsity relative to SparseThreshold.
func (m *MatrixBlock) ExamineAndApplySparsity() *MatrixBlock {
	if m.rows == 0 || m.cols == 0 {
		return m
	}
	if m.Sparsity() < SparseThreshold {
		return m.ToSparse()
	}
	return m.ToDense()
}

// Copy returns a deep copy of the block.
func (m *MatrixBlock) Copy() *MatrixBlock {
	cp := &MatrixBlock{rows: m.rows, cols: m.cols, nnz: m.nnz}
	if m.sparse != nil {
		cp.sparse = m.sparse.Copy()
	} else {
		cp.dense = make([]float64, len(m.dense))
		copy(cp.dense, m.dense)
	}
	return cp
}

// Reshape returns a new matrix with the same cells laid out as rows x cols
// (row-major order). The cell count must match.
func (m *MatrixBlock) Reshape(rows, cols int, byRow bool) (*MatrixBlock, error) {
	if rows*cols != m.rows*m.cols {
		return nil, fmt.Errorf("matrix: reshape %dx%d -> %dx%d changes cell count", m.rows, m.cols, rows, cols)
	}
	src := m.Copy().ToDense()
	if byRow {
		out := NewDenseFromSlice(rows, cols, src.dense)
		return out, nil
	}
	// column-major reinterpretation
	out := NewDense(rows, cols)
	idx := 0
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			srcR := idx / m.cols
			srcC := idx % m.cols
			_ = srcR
			_ = srcC
			out.dense[r*cols+c] = src.dense[idx]
			idx++
		}
	}
	out.RecomputeNNZ()
	return out, nil
}

// Equals reports whether two matrices have identical dimensions and cells
// within the given tolerance.
func (m *MatrixBlock) Equals(o *MatrixBlock, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			a, b := m.Get(r, c), o.Get(r, c)
			if math.IsNaN(a) && math.IsNaN(b) {
				continue
			}
			if math.Abs(a-b) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices render only
// their metadata.
func (m *MatrixBlock) String() string {
	if m.rows*m.cols > 200 {
		return fmt.Sprintf("MatrixBlock[%dx%d, nnz=%d, sparse=%v]", m.rows, m.cols, m.nnz, m.IsSparse())
	}
	s := fmt.Sprintf("MatrixBlock[%dx%d]\n", m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			s += fmt.Sprintf("%8.4f ", m.Get(r, c))
		}
		s += "\n"
	}
	return s
}

// InMemorySize estimates the in-memory footprint of the block in bytes.
func (m *MatrixBlock) InMemorySize() int64 {
	if m.sparse != nil {
		return m.sparse.NNZ()*16 + int64(len(m.sparse.RowPtr))*8 + 64
	}
	return int64(len(m.dense))*8 + 64
}

// csr returns the sparse structure with the flat-CSR invariant restored
// (pending incremental edits compacted), or nil for dense blocks. Kernels
// that read RowPtr/ColIdx/Values directly must obtain the structure through
// this accessor.
func (m *MatrixBlock) csr() *CSR {
	if m.sparse != nil {
		m.sparse.Compact()
	}
	return m.sparse
}
