package matrix

import (
	"sort"
	"sync"
	"sync/atomic"
)

// CSR is a compressed sparse row representation: for each row r, the column
// indexes and values of its non-zero cells are stored in
// ColIdx[RowPtr[r]:RowPtr[r+1]] and Values[RowPtr[r]:RowPtr[r+1]], with
// column indexes sorted ascending within each row.
//
// Incremental mutation through Set is amortized: instead of rewriting the
// RowPtr suffix and shifting ColIdx/Values on every insert or delete
// (O(rows·nnz) for row-wise construction), structural edits are buffered in a
// per-row overlay and merged into the flat arrays in a single O(nnz + edits)
// pass on Compact. Kernels that read the flat arrays directly obtain the
// structure through MatrixBlock.csr()/CSR.Compact(), which restores the flat
// invariant first. Bulk construction should still use a Builder.
type CSR struct {
	RowsN, ColsN int
	RowPtr       []int
	ColIdx       []int
	Values       []float64

	// edits is the pending structural-edit overlay (nil when the flat arrays
	// are authoritative). mu serializes overlay mutation and compaction; the
	// atomic pointer lets fully-compacted structures skip the lock on reads.
	// Like the flat arrays themselves, concurrent use is safe only between
	// readers (Get/NNZ/Compact/kernel access through the compacting
	// accessor); Set requires exclusive access, which the runtime guarantees
	// because matrix blocks are immutable once published to the symbol table.
	edits atomic.Pointer[csrEdits]
	mu    sync.Mutex
}

// csrEdits buffers uncompacted cell edits: rows[r][c] = new value, where 0
// records a deletion. nnzDelta tracks the net change against len(Values).
type csrEdits struct {
	rows     map[int]map[int]float64
	nnzDelta int64
}

// NewCSR creates an empty CSR structure for a rows x cols matrix.
func NewCSR(rows, cols int) *CSR {
	return &CSR{RowsN: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
}

// NNZ returns the number of stored non-zero values.
func (s *CSR) NNZ() int64 {
	if e := s.edits.Load(); e != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if e := s.edits.Load(); e != nil {
			return int64(len(s.Values)) + e.nnzDelta
		}
	}
	return int64(len(s.Values))
}

// flatGet reads a cell from the flat arrays only.
func (s *CSR) flatGet(r, c int) float64 {
	lo, hi := s.RowPtr[r], s.RowPtr[r+1]
	idx := sort.SearchInts(s.ColIdx[lo:hi], c)
	if lo+idx < hi && s.ColIdx[lo+idx] == c {
		return s.Values[lo+idx]
	}
	return 0
}

// Get returns the value at (r, c), or 0 if not stored.
func (s *CSR) Get(r, c int) float64 {
	if s.edits.Load() != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if e := s.edits.Load(); e != nil {
			if v, ok := e.rows[r][c]; ok {
				return v
			}
		}
		return s.flatGet(r, c)
	}
	return s.flatGet(r, c)
}

// Set assigns the value at (r, c). Setting a value to zero removes the entry.
// In-place overwrites of stored cells hit the flat arrays directly; inserts
// and deletes are buffered in the overlay and merged on the next Compact, so
// incremental construction is amortized O(log nnz) per cell instead of
// O(rows + nnz).
func (s *CSR) Set(r, c int, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.edits.Load()
	if prev, ok := e.lookup(r, c); ok {
		// cell already edited: update the overlay in place
		e.rows[r][c] = v
		e.nnzDelta += deltaNNZ(prev, v)
		return
	}
	lo, hi := s.RowPtr[r], s.RowPtr[r+1]
	idx := sort.SearchInts(s.ColIdx[lo:hi], c)
	pos := lo + idx
	exists := pos < hi && s.ColIdx[pos] == c
	switch {
	case exists && v != 0:
		s.Values[pos] = v
	case !exists && v == 0:
		// deleting an absent cell: nothing to record
	default:
		// structural change (insert or delete): buffer it
		if e == nil {
			e = &csrEdits{rows: map[int]map[int]float64{}}
			s.edits.Store(e)
		}
		if e.rows[r] == nil {
			e.rows[r] = map[int]float64{}
		}
		e.rows[r][c] = v
		if v != 0 {
			e.nnzDelta++
		} else {
			e.nnzDelta--
		}
	}
}

// lookup returns the pending edit for a cell, if any.
func (e *csrEdits) lookup(r, c int) (float64, bool) {
	if e == nil {
		return 0, false
	}
	v, ok := e.rows[r][c]
	return v, ok
}

// Compact merges pending edits into the flat arrays, restoring the invariant
// that ColIdx/Values/RowPtr fully describe the matrix. It is a no-op when no
// edits are pending and safe to call from concurrent readers (the array swap
// is published by the atomic store of the nil overlay; racing Compacts
// serialize on mu), but not concurrently with Set.
func (s *CSR) Compact() {
	if s.edits.Load() == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.edits.Load()
	if e == nil {
		return
	}
	newCap := len(s.Values) + int(e.nnzDelta)
	if newCap < 0 {
		newCap = 0
	}
	rowPtr := make([]int, s.RowsN+1)
	colIdx := make([]int, 0, newCap)
	values := make([]float64, 0, newCap)
	for r := 0; r < s.RowsN; r++ {
		rowPtr[r] = len(values)
		lo, hi := s.RowPtr[r], s.RowPtr[r+1]
		edited, ok := e.rows[r]
		if !ok {
			// untouched row: bulk copy
			colIdx = append(colIdx, s.ColIdx[lo:hi]...)
			values = append(values, s.Values[lo:hi]...)
			continue
		}
		cols := make([]int, 0, len(edited))
		for c := range edited {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		// merge the sorted flat row with the sorted edit columns
		i, j := lo, 0
		for i < hi || j < len(cols) {
			switch {
			case j >= len(cols) || (i < hi && s.ColIdx[i] < cols[j]):
				colIdx = append(colIdx, s.ColIdx[i])
				values = append(values, s.Values[i])
				i++
			case i >= hi || cols[j] < s.ColIdx[i]:
				if v := edited[cols[j]]; v != 0 {
					colIdx = append(colIdx, cols[j])
					values = append(values, v)
				}
				j++
			default: // same column: the edit wins
				if v := edited[cols[j]]; v != 0 {
					colIdx = append(colIdx, cols[j])
					values = append(values, v)
				}
				i++
				j++
			}
		}
	}
	rowPtr[s.RowsN] = len(values)
	s.RowPtr, s.ColIdx, s.Values = rowPtr, colIdx, values
	s.edits.Store(nil)
}

// Copy returns a deep (compacted) copy of the CSR structure.
func (s *CSR) Copy() *CSR {
	s.Compact()
	cp := &CSR{RowsN: s.RowsN, ColsN: s.ColsN}
	cp.RowPtr = append([]int(nil), s.RowPtr...)
	cp.ColIdx = append([]int(nil), s.ColIdx...)
	cp.Values = append([]float64(nil), s.Values...)
	return cp
}

// RowNNZ returns the number of non-zero values in row r.
func (s *CSR) RowNNZ(r int) int {
	s.Compact()
	return s.RowPtr[r+1] - s.RowPtr[r]
}

// Builder incrementally constructs a sparse MatrixBlock row by row. Cells
// must be added with non-decreasing row index and, within a row, ascending
// column index. This is the fast path used by readers and sparse kernels.
type Builder struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	values     []float64
	curRow     int
}

// NewBuilder creates a Builder for a rows x cols sparse matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols, rowPtr: make([]int, 1, rows+1)}
}

// Add appends a cell. Zero values are skipped.
func (b *Builder) Add(r, c int, v float64) {
	if v == 0 {
		return
	}
	for b.curRow < r {
		b.rowPtr = append(b.rowPtr, len(b.values))
		b.curRow++
	}
	b.colIdx = append(b.colIdx, c)
	b.values = append(b.values, v)
}

// Build finalizes the sparse matrix block.
func (b *Builder) Build() *MatrixBlock {
	for b.curRow < b.rows {
		b.rowPtr = append(b.rowPtr, len(b.values))
		b.curRow++
	}
	csr := &CSR{RowsN: b.rows, ColsN: b.cols, RowPtr: b.rowPtr, ColIdx: b.colIdx, Values: b.values}
	return &MatrixBlock{rows: b.rows, cols: b.cols, sparse: csr, nnz: csr.NNZ()}
}
