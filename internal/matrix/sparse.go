package matrix

import "sort"

// CSR is a compressed sparse row representation: for each row r, the column
// indexes and values of its non-zero cells are stored in
// ColIdx[RowPtr[r]:RowPtr[r+1]] and Values[RowPtr[r]:RowPtr[r+1]], with
// column indexes sorted ascending within each row.
type CSR struct {
	RowsN, ColsN int
	RowPtr       []int
	ColIdx       []int
	Values       []float64
}

// NewCSR creates an empty CSR structure for a rows x cols matrix.
func NewCSR(rows, cols int) *CSR {
	return &CSR{RowsN: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
}

// NNZ returns the number of stored non-zero values.
func (s *CSR) NNZ() int64 { return int64(len(s.Values)) }

// Get returns the value at (r, c), or 0 if not stored.
func (s *CSR) Get(r, c int) float64 {
	lo, hi := s.RowPtr[r], s.RowPtr[r+1]
	idx := sort.SearchInts(s.ColIdx[lo:hi], c)
	if lo+idx < hi && s.ColIdx[lo+idx] == c {
		return s.Values[lo+idx]
	}
	return 0
}

// Set assigns the value at (r, c). Setting a value to zero removes the entry.
// This is O(nnz) in the worst case and intended for incremental construction
// of small matrices; bulk construction should use a Builder.
func (s *CSR) Set(r, c int, v float64) {
	lo, hi := s.RowPtr[r], s.RowPtr[r+1]
	idx := sort.SearchInts(s.ColIdx[lo:hi], c)
	pos := lo + idx
	exists := pos < hi && s.ColIdx[pos] == c
	switch {
	case exists && v != 0:
		s.Values[pos] = v
	case exists && v == 0:
		s.ColIdx = append(s.ColIdx[:pos], s.ColIdx[pos+1:]...)
		s.Values = append(s.Values[:pos], s.Values[pos+1:]...)
		for i := r + 1; i <= s.RowsN; i++ {
			s.RowPtr[i]--
		}
	case !exists && v != 0:
		s.ColIdx = append(s.ColIdx, 0)
		copy(s.ColIdx[pos+1:], s.ColIdx[pos:])
		s.ColIdx[pos] = c
		s.Values = append(s.Values, 0)
		copy(s.Values[pos+1:], s.Values[pos:])
		s.Values[pos] = v
		for i := r + 1; i <= s.RowsN; i++ {
			s.RowPtr[i]++
		}
	}
}

// Copy returns a deep copy of the CSR structure.
func (s *CSR) Copy() *CSR {
	cp := &CSR{RowsN: s.RowsN, ColsN: s.ColsN}
	cp.RowPtr = append([]int(nil), s.RowPtr...)
	cp.ColIdx = append([]int(nil), s.ColIdx...)
	cp.Values = append([]float64(nil), s.Values...)
	return cp
}

// RowNNZ returns the number of non-zero values in row r.
func (s *CSR) RowNNZ(r int) int { return s.RowPtr[r+1] - s.RowPtr[r] }

// Builder incrementally constructs a sparse MatrixBlock row by row. Cells
// must be added with non-decreasing row index and, within a row, ascending
// column index. This is the fast path used by readers and sparse kernels.
type Builder struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	values     []float64
	curRow     int
}

// NewBuilder creates a Builder for a rows x cols sparse matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols, rowPtr: make([]int, 1, rows+1)}
}

// Add appends a cell. Zero values are skipped.
func (b *Builder) Add(r, c int, v float64) {
	if v == 0 {
		return
	}
	for b.curRow < r {
		b.rowPtr = append(b.rowPtr, len(b.values))
		b.curRow++
	}
	b.colIdx = append(b.colIdx, c)
	b.values = append(b.values, v)
}

// Build finalizes the sparse matrix block.
func (b *Builder) Build() *MatrixBlock {
	for b.curRow < b.rows {
		b.rowPtr = append(b.rowPtr, len(b.values))
		b.curRow++
	}
	csr := &CSR{RowsN: b.rows, ColsN: b.cols, RowPtr: b.rowPtr, ColIdx: b.colIdx, Values: b.values}
	return &MatrixBlock{rows: b.rows, cols: b.cols, sparse: csr, nnz: csr.NNZ()}
}
