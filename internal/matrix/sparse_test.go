package matrix

import (
	"math/rand"
	"testing"
)

// TestCSRIncrementalSetMatchesDense fuzzes interleaved Set/Get (inserts,
// overwrites, deletions, re-inserts) against a dense reference, exercising
// the amortized edit overlay and compaction.
func TestCSRIncrementalSetMatchesDense(t *testing.T) {
	const rows, cols = 37, 23
	rng := rand.New(rand.NewSource(99))
	s := NewCSR(rows, cols)
	ref := make([]float64, rows*cols)
	for step := 0; step < 5000; step++ {
		r, c := rng.Intn(rows), rng.Intn(cols)
		switch rng.Intn(4) {
		case 0: // delete
			s.Set(r, c, 0)
			ref[r*cols+c] = 0
		default: // insert / overwrite
			v := rng.NormFloat64()
			s.Set(r, c, v)
			ref[r*cols+c] = v
		}
		if step%97 == 0 {
			// interleaved reads must see pending edits
			if got := s.Get(r, c); got != ref[r*cols+c] {
				t.Fatalf("step %d: Get(%d,%d) = %v, want %v", step, r, c, got, ref[r*cols+c])
			}
		}
		if step%501 == 0 {
			s.Compact()
		}
	}
	s.Compact()
	nnz := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if got := s.Get(r, c); got != ref[r*cols+c] {
				t.Fatalf("final Get(%d,%d) = %v, want %v", r, c, got, ref[r*cols+c])
			}
			if ref[r*cols+c] != 0 {
				nnz++
			}
		}
	}
	if got := s.NNZ(); got != int64(nnz) {
		t.Errorf("NNZ = %d, want %d", got, nnz)
	}
	// flat invariant after compaction: sorted columns, consistent row pointers
	if s.RowPtr[0] != 0 || s.RowPtr[rows] != len(s.Values) {
		t.Errorf("row pointer bounds inconsistent: %d..%d with %d values", s.RowPtr[0], s.RowPtr[rows], len(s.Values))
	}
	for r := 0; r < rows; r++ {
		for p := s.RowPtr[r] + 1; p < s.RowPtr[r+1]; p++ {
			if s.ColIdx[p-1] >= s.ColIdx[p] {
				t.Fatalf("row %d columns not strictly ascending", r)
			}
		}
	}
}

// TestCSRRowMajorConstruction covers the common incremental construction
// pattern (ascending row-major Set) that was previously O(rows·nnz).
func TestCSRRowMajorConstruction(t *testing.T) {
	const rows, cols = 400, 50
	m := NewSparse(rows, cols)
	for r := 0; r < rows; r++ {
		for c := r % 3; c < cols; c += 3 {
			m.Set(r, c, float64(r*cols+c+1))
		}
	}
	if m.NNZ() != m.RecomputeNNZ() {
		t.Errorf("tracked nnz %d != recomputed %d", m.NNZ(), m.RecomputeNNZ())
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			want := 0.0
			if c >= r%3 && (c-r%3)%3 == 0 {
				want = float64(r*cols + c + 1)
			}
			if got := m.Get(r, c); got != want {
				t.Fatalf("Get(%d,%d) = %v, want %v", r, c, got, want)
			}
		}
	}
}

// TestCSRCopyCompactsPendingEdits ensures copies observe buffered edits.
func TestCSRCopyCompactsPendingEdits(t *testing.T) {
	s := NewCSR(4, 4)
	s.Set(0, 1, 2)
	s.Set(3, 2, 5)
	s.Set(0, 1, 0) // delete again while still buffered
	cp := s.Copy()
	if cp.Get(0, 1) != 0 || cp.Get(3, 2) != 5 {
		t.Errorf("copy lost pending edits: got (%v, %v)", cp.Get(0, 1), cp.Get(3, 2))
	}
	if cp.NNZ() != 1 {
		t.Errorf("copy NNZ = %d, want 1", cp.NNZ())
	}
}

// BenchmarkCSRIncrementalConstruction measures row-major incremental Set; the
// amortized overlay keeps this near-linear in nnz (it was O(rows·nnz)).
func BenchmarkCSRIncrementalConstruction(b *testing.B) {
	const rows, cols = 2000, 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewSparse(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c += 5 {
				m.Set(r, c, 1.5)
			}
		}
		m.RecomputeNNZ()
	}
}
