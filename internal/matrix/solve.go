package matrix

import (
	"fmt"
	"math"
)

// Solve solves the linear system A %*% x = b for x, where A is square and b
// has matching rows. Symmetric positive definite systems (such as the normal
// equations t(X)%*%X + lambda*I built by lmDS) are solved with a Cholesky
// factorization; other systems fall back to LU decomposition with partial
// pivoting.
func Solve(a, b *MatrixBlock) (*MatrixBlock, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: solve requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	if b.rows != a.rows {
		return nil, fmt.Errorf("matrix: solve rhs rows %d do not match matrix size %d", b.rows, a.rows)
	}
	ad := a.Copy().ToDense()
	bd := b.Copy().ToDense()
	if isSymmetric(ad, 1e-10) {
		if x, err := solveCholesky(ad, bd); err == nil {
			return x, nil
		}
	}
	return solveLU(ad, bd)
}

func isSymmetric(a *MatrixBlock, tol float64) bool {
	n := a.rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.dense[i*n+j]-a.dense[j*n+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Cholesky computes the lower-triangular Cholesky factor L of a symmetric
// positive definite matrix A such that L %*% t(L) == A.
func Cholesky(a *MatrixBlock) (*MatrixBlock, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: cholesky requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	src := a.Copy().ToDense()
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += float64(l.dense[j*n+k] * l.dense[j*n+k])
		}
		d = src.dense[j*n+j] - d
		if d <= 0 {
			return nil, fmt.Errorf("matrix: cholesky failed, matrix not positive definite at column %d", j)
		}
		l.dense[j*n+j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += float64(l.dense[i*n+k] * l.dense[j*n+k])
			}
			l.dense[i*n+j] = (src.dense[i*n+j] - s) / l.dense[j*n+j]
		}
	}
	l.RecomputeNNZ()
	return l, nil
}

func solveCholesky(a, b *MatrixBlock) (*MatrixBlock, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n, k := a.rows, b.cols
	// forward substitution L y = b
	y := NewDense(n, k)
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			s := b.dense[i*k+c]
			for j := 0; j < i; j++ {
				s -= float64(l.dense[i*n+j] * y.dense[j*k+c])
			}
			y.dense[i*k+c] = s / l.dense[i*n+i]
		}
	}
	// backward substitution t(L) x = y
	x := NewDense(n, k)
	for c := 0; c < k; c++ {
		for i := n - 1; i >= 0; i-- {
			s := y.dense[i*k+c]
			for j := i + 1; j < n; j++ {
				s -= float64(l.dense[j*n+i] * x.dense[j*k+c])
			}
			x.dense[i*k+c] = s / l.dense[i*n+i]
		}
	}
	x.RecomputeNNZ()
	return x, nil
}

func solveLU(a, b *MatrixBlock) (*MatrixBlock, error) {
	n, k := a.rows, b.cols
	lu := append([]float64(nil), a.dense...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// partial pivoting
		pivot, pivotVal := col, math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[r*n+col]); v > pivotVal {
				pivot, pivotVal = r, v
			}
		}
		if pivotVal < 1e-14 {
			return nil, fmt.Errorf("matrix: solve failed, matrix is singular at column %d", col)
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				lu[col*n+c], lu[pivot*n+c] = lu[pivot*n+c], lu[col*n+c]
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / lu[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu[r*n+col] * inv
			lu[r*n+col] = f
			for c := col + 1; c < n; c++ {
				lu[r*n+c] -= float64(f * lu[col*n+c])
			}
		}
	}
	x := NewDense(n, k)
	for c := 0; c < k; c++ {
		// apply permutation and forward substitution
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s := b.dense[perm[i]*k+c]
			for j := 0; j < i; j++ {
				s -= float64(lu[i*n+j] * y[j])
			}
			y[i] = s
		}
		// backward substitution
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for j := i + 1; j < n; j++ {
				s -= float64(lu[i*n+j] * x.dense[j*k+c])
			}
			x.dense[i*k+c] = s / lu[i*n+i]
		}
	}
	x.RecomputeNNZ()
	return x, nil
}

// Inverse computes the matrix inverse of a square matrix via LU-based solve
// against the identity.
func Inverse(a *MatrixBlock) (*MatrixBlock, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: inverse requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	return Solve(a, Identity(a.rows))
}

// Det computes the determinant of a square matrix via LU decomposition.
func Det(a *MatrixBlock) (float64, error) {
	if a.rows != a.cols {
		return 0, fmt.Errorf("matrix: det requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	lu := append([]float64(nil), a.Copy().ToDense().dense...)
	sign := 1.0
	for col := 0; col < n; col++ {
		pivot, pivotVal := col, math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[r*n+col]); v > pivotVal {
				pivot, pivotVal = r, v
			}
		}
		if pivotVal == 0 {
			return 0, nil
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				lu[col*n+c], lu[pivot*n+c] = lu[pivot*n+c], lu[col*n+c]
			}
			sign = -sign
		}
		inv := 1 / lu[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu[r*n+col] * inv
			for c := col + 1; c < n; c++ {
				lu[r*n+c] -= float64(f * lu[col*n+c])
			}
		}
	}
	det := sign
	for i := 0; i < n; i++ {
		det *= lu[i*n+i]
	}
	return det, nil
}

// EigenSym computes the eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi rotation method. It returns the eigenvalues as a
// column vector (descending) and the corresponding eigenvectors as columns.
// It is used by the pca builtin.
func EigenSym(a *MatrixBlock) (values, vectors *MatrixBlock, err error) {
	if a.rows != a.cols {
		return nil, nil, fmt.Errorf("matrix: eigen requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	m := append([]float64(nil), a.Copy().ToDense().dense...)
	v := Identity(n).dense
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += float64(m[i*n+j] * m[i*n+j])
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := m[p*n+p], m[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(float64(theta*theta)+1))
				c := 1 / math.Sqrt(float64(t*t)+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k*n+p], m[k*n+q]
					m[k*n+p] = float64(c*mkp) - float64(s*mkq)
					m[k*n+q] = float64(s*mkp) + float64(c*mkq)
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p*n+k], m[q*n+k]
					m[p*n+k] = float64(c*mpk) - float64(s*mqk)
					m[q*n+k] = float64(s*mpk) + float64(c*mqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = float64(c*vkp) - float64(s*vkq)
					v[k*n+q] = float64(s*vkp) + float64(c*vkq)
				}
			}
		}
	}
	// extract and sort eigenvalues descending
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{m[i*n+i], i}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pairs[j].val > pairs[i].val {
				pairs[i], pairs[j] = pairs[j], pairs[i]
			}
		}
	}
	values = NewDense(n, 1)
	vectors = NewDense(n, n)
	for i, p := range pairs {
		values.dense[i] = p.val
		for r := 0; r < n; r++ {
			vectors.dense[r*n+i] = v[r*n+p.idx]
		}
	}
	values.RecomputeNNZ()
	vectors.RecomputeNNZ()
	return values, vectors, nil
}
