package matrix

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the single-pass fused operator kernels of the fusion
// subsystem (DESIGN.md, "Fused operator pipelines"): cellwise-aggregate
// pipelines described by a CellProgram and evaluated by FusedAgg without
// materializing any full-size intermediate, and the mmchain kernel computing
// t(X) %*% (X %*% v) and t(X) %*% (w * (X %*% v)) in one pass over X.
//
// All fused kernels use fixed-chunk row partitioning: chunk boundaries depend
// only on the row count, partial aggregates are combined in chunk order, and
// rows are accumulated left-to-right within a chunk, so results are bitwise
// reproducible across thread counts.

// AggKind identifies the aggregate applied on top of a fused cellwise
// pipeline.
type AggKind int

// Supported fused aggregates.
const (
	AggSum AggKind = iota
	AggMin
	AggMax
	AggColSums
	AggRowSums
)

// String returns the DML name of the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggColSums:
		return "colSums"
	case AggRowSums:
		return "rowSums"
	default:
		return "?"
	}
}

// CellOpCode classifies one instruction of a cell program.
type CellOpCode uint8

// Cell program instruction codes.
const (
	// CellLoad pushes the value of argument Arg at the current cell.
	CellLoad CellOpCode = iota
	// CellUnary replaces the top of the stack with Un applied to it.
	CellUnary
	// CellBinary pops the right then left operand and pushes Bin(left, right).
	CellBinary
)

// CellInstr is one instruction of a cell program.
type CellInstr struct {
	Code CellOpCode
	Arg  int      // argument index for CellLoad
	Un   UnaryOp  // operation for CellUnary
	Bin  BinaryOp // operation for CellBinary
}

// CellMaxStack bounds the evaluation stack of a cell program; the HOP matcher
// refuses to fuse deeper expression trees.
const CellMaxStack = 8

// CellMaxInstrs bounds the length of a cell program.
const CellMaxInstrs = 64

// CellProgram is a stack program evaluated once per cell of the fused
// pipeline: arguments are the leaf operands (matrices of identical shape, or
// scalars), interior instructions are the fused cellwise operations. Programs
// are produced by the HOP-level pattern matcher (hops.FuseOperators).
type CellProgram struct {
	Instrs  []CellInstr
	NumArgs int
	// Annihilating reports the structural guarantee that the program
	// evaluates to exactly 0 whenever the driver argument (the first matrix
	// argument) is 0, regardless of the other arguments. It enables the
	// sparse-driver iteration that skips non-stored cells (sparse-safe
	// semantics: non-stored cells are treated as exact zeros, so Inf/NaN
	// values of other operands at those cells are ignored).
	Annihilating bool
}

// IdentityProgram returns the single-argument pass-through program (the plain
// aggregation over one matrix).
func IdentityProgram() *CellProgram {
	return &CellProgram{
		Instrs:       []CellInstr{{Code: CellLoad, Arg: 0}},
		NumArgs:      1,
		Annihilating: true,
	}
}

// Validate checks stack discipline and argument bounds.
func (p *CellProgram) Validate() error {
	if len(p.Instrs) == 0 || len(p.Instrs) > CellMaxInstrs {
		return fmt.Errorf("matrix: cell program has %d instructions (want 1..%d)", len(p.Instrs), CellMaxInstrs)
	}
	depth := 0
	for i, ins := range p.Instrs {
		switch ins.Code {
		case CellLoad:
			if ins.Arg < 0 || ins.Arg >= p.NumArgs {
				return fmt.Errorf("matrix: cell instr %d loads argument %d of %d", i, ins.Arg, p.NumArgs)
			}
			depth++
			if depth > CellMaxStack {
				return fmt.Errorf("matrix: cell program exceeds max stack depth %d", CellMaxStack)
			}
		case CellUnary:
			if depth < 1 {
				return fmt.Errorf("matrix: cell instr %d underflows the stack", i)
			}
		case CellBinary:
			if depth < 2 {
				return fmt.Errorf("matrix: cell instr %d underflows the stack", i)
			}
			depth--
		default:
			return fmt.Errorf("matrix: cell instr %d has unknown code %d", i, ins.Code)
		}
	}
	if depth != 1 {
		return fmt.Errorf("matrix: cell program leaves %d values on the stack", depth)
	}
	return nil
}

// Signature renders a canonical description of the program, used as lineage
// data so that two fused instructions with different programs never share a
// lineage entry, and for EXPLAIN output.
func (p *CellProgram) Signature() string {
	var sb strings.Builder
	for i, ins := range p.Instrs {
		if i > 0 {
			sb.WriteByte(';')
		}
		switch ins.Code {
		case CellLoad:
			fmt.Fprintf(&sb, "L%d", ins.Arg)
		case CellUnary:
			fmt.Fprintf(&sb, "U%s", ins.Un)
		case CellBinary:
			fmt.Fprintf(&sb, "B%s", ins.Bin)
		}
	}
	return sb.String()
}

// CellArg is one operand of a fused pipeline: a matrix block, or a scalar
// (Mat == nil).
type CellArg struct {
	Mat    *MatrixBlock
	Scalar float64
}

// --- deterministic fixed-chunk row partitioning -----------------------------

const (
	// fusedChunkRows is the target rows per chunk; boundaries depend only on
	// the row count so results are reproducible across thread counts.
	fusedChunkRows = 128
	// fusedMaxChunks caps the number of chunk partials.
	fusedMaxChunks = 256
	// parallelMinCells is the matrix size below which kernels stay
	// single-threaded (goroutine overhead dominates on small operands).
	parallelMinCells = 16 * 1024
)

// fusedChunks derives the fixed chunking of a row range: the number of chunks
// and the chunk size, both functions of rows alone.
func fusedChunks(rows int) (num, size int) {
	if rows <= 0 {
		return 0, 0
	}
	num = (rows + fusedChunkRows - 1) / fusedChunkRows
	if num > fusedMaxChunks {
		num = fusedMaxChunks
	}
	size = (rows + num - 1) / num
	num = (rows + size - 1) / size
	return num, size
}

// chunkWorkers resolves the worker count for a chunked run.
func chunkWorkers(num, threads, cells int) int {
	threads = resolveThreads(threads)
	if cells < parallelMinCells {
		return 1
	}
	if threads > num {
		threads = num
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// runChunks executes fn(worker, chunk, r0, r1) for every fixed chunk of
// [0, rows), on nw workers. Chunks are claimed dynamically but identified by
// index, so chunk-order combination stays deterministic.
func runChunks(rows, num, size, nw int, fn func(worker, chunk, r0, r1 int)) {
	if num == 0 {
		return
	}
	bounds := func(ci int) (int, int) {
		r0 := ci * size
		r1 := min(r0+size, rows)
		return r0, r1
	}
	if nw <= 1 {
		for ci := 0; ci < num; ci++ {
			r0, r1 := bounds(ci)
			fn(0, ci, r0, r1)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= num {
					return
				}
				r0, r1 := bounds(ci)
				fn(w, ci, r0, r1)
			}
		}(w)
	}
	wg.Wait()
}

// --- fused cellwise-aggregate kernel ---------------------------------------

// evalKind classifies a program for the specialized row loops.
type evalKind uint8

const (
	evalIdentity evalKind = iota // [Load a]
	evalUnary                    // [Load a, Unary]
	evalBinary                   // [Load a, Load b, Binary]
	evalGeneral                  // anything else (stack interpreter)
)

func classify(p *CellProgram) (kind evalKind, a, b int, un UnaryOp, bin BinaryOp) {
	ins := p.Instrs
	switch {
	case len(ins) == 1 && ins[0].Code == CellLoad:
		return evalIdentity, ins[0].Arg, 0, 0, 0
	case len(ins) == 2 && ins[0].Code == CellLoad && ins[1].Code == CellUnary:
		return evalUnary, ins[0].Arg, 0, ins[1].Un, 0
	case len(ins) == 3 && ins[0].Code == CellLoad && ins[1].Code == CellLoad && ins[2].Code == CellBinary:
		return evalBinary, ins[0].Arg, ins[1].Arg, 0, ins[2].Bin
	default:
		return evalGeneral, 0, 0, 0, 0
	}
}

// aggWorker holds the per-worker scratch state of one FusedAgg execution.
type aggWorker struct {
	rowBuf  []float64   // cell values of the current row (dense driver)
	scratch [][]float64 // expanded rows of sparse non-driver arguments
	rows    [][]float64 // per-arg current row slice (nil -> scalar)
	consts  []float64   // per-arg scalar value (driver slot reused sparsely)
	stack   []float64   // evaluation stack for general programs
}

// fusedRun is the shared immutable state of one FusedAgg execution.
type fusedRun struct {
	prog   *CellProgram
	args   []CellArg
	csrs   []*CSR // pre-compacted CSR of sparse matrix args (nil otherwise)
	rows   int
	cols   int
	driver int  // index of the first matrix argument
	sparse bool // iterate the driver's stored cells only
	kind   evalKind
	a, b   int
	un     UnaryOp
	bin    BinaryOp
}

func (fr *fusedRun) newWorker() *aggWorker {
	w := &aggWorker{
		rows:   make([][]float64, len(fr.args)),
		consts: make([]float64, len(fr.args)),
	}
	// identity programs over a matrix argument reuse the argument's own row;
	// everything else (including identity over a scalar) needs the row buffer
	needBuf := !(fr.kind == evalIdentity && fr.args[fr.a].Mat != nil)
	for i, a := range fr.args {
		if a.Mat == nil {
			w.consts[i] = a.Scalar
		}
	}
	if !fr.sparse && needBuf {
		w.rowBuf = make([]float64, fr.cols)
	}
	if fr.kind == evalGeneral {
		w.stack = make([]float64, CellMaxStack)
	}
	w.scratch = make([][]float64, len(fr.args))
	return w
}

// loadRow points the per-arg row slices at row r. Sparse non-driver arguments
// are expanded into per-worker scratch rows; in sparse-driver mode the driver
// slot stays nil and its value is fed per stored cell.
func (fr *fusedRun) loadRow(w *aggWorker, r int) {
	for i, a := range fr.args {
		if a.Mat == nil {
			w.rows[i] = nil
			continue
		}
		if fr.sparse && i == fr.driver {
			w.rows[i] = nil
			continue
		}
		if s := fr.csrs[i]; s != nil {
			if w.scratch[i] == nil {
				w.scratch[i] = make([]float64, fr.cols)
			}
			buf := w.scratch[i]
			for c := range buf {
				buf[c] = 0
			}
			for p := s.RowPtr[r]; p < s.RowPtr[r+1]; p++ {
				buf[s.ColIdx[p]] = s.Values[p]
			}
			w.rows[i] = buf
		} else {
			w.rows[i] = a.Mat.dense[r*fr.cols : (r+1)*fr.cols]
		}
	}
}

// evalDenseRow computes the cell values of the loaded row into a slice of
// length cols. For identity programs over a dense argument the argument's own
// row is returned without copying.
func (fr *fusedRun) evalDenseRow(w *aggWorker) []float64 {
	switch fr.kind {
	case evalIdentity:
		if rs := w.rows[fr.a]; rs != nil {
			return rs
		}
		dst := w.rowBuf
		v := w.consts[fr.a]
		for c := range dst {
			dst[c] = v
		}
		return dst
	case evalUnary:
		dst := w.rowBuf
		if rs := w.rows[fr.a]; rs != nil {
			for c := range dst {
				dst[c] = fr.un.Apply(rs[c])
			}
		} else {
			v := fr.un.Apply(w.consts[fr.a])
			for c := range dst {
				dst[c] = v
			}
		}
		return dst
	case evalBinary:
		dst := w.rowBuf
		ra, rb := w.rows[fr.a], w.rows[fr.b]
		switch {
		case ra != nil && rb != nil:
			switch fr.bin {
			case OpMul:
				for c := range dst {
					dst[c] = ra[c] * rb[c]
				}
			case OpAdd:
				for c := range dst {
					dst[c] = ra[c] + rb[c]
				}
			case OpSub:
				for c := range dst {
					dst[c] = ra[c] - rb[c]
				}
			default:
				for c := range dst {
					dst[c] = fr.bin.Apply(ra[c], rb[c])
				}
			}
		case ra != nil:
			cb := w.consts[fr.b]
			for c := range dst {
				dst[c] = fr.bin.Apply(ra[c], cb)
			}
		case rb != nil:
			ca := w.consts[fr.a]
			for c := range dst {
				dst[c] = fr.bin.Apply(ca, rb[c])
			}
		default:
			v := fr.bin.Apply(w.consts[fr.a], w.consts[fr.b])
			for c := range dst {
				dst[c] = v
			}
		}
		return dst
	default:
		dst := w.rowBuf
		for c := range dst {
			dst[c] = fr.evalCell(w, c, 0)
		}
		return dst
	}
}

// evalCell interprets the program at one cell; in sparse-driver mode dv is
// the driver's stored value at that cell.
func (fr *fusedRun) evalCell(w *aggWorker, c int, dv float64) float64 {
	sp := 0
	for _, ins := range fr.prog.Instrs {
		switch ins.Code {
		case CellLoad:
			v := w.consts[ins.Arg]
			if rs := w.rows[ins.Arg]; rs != nil {
				v = rs[c]
			} else if fr.sparse && ins.Arg == fr.driver {
				v = dv
			}
			w.stack[sp] = v
			sp++
		case CellUnary:
			w.stack[sp-1] = ins.Un.Apply(w.stack[sp-1])
		case CellBinary:
			sp--
			w.stack[sp-1] = ins.Bin.Apply(w.stack[sp-1], w.stack[sp])
		}
	}
	return w.stack[0]
}

// evalSparseRow computes the cell values at the stored positions of the
// driver's row (given by cidx/dvals) into a slice of len(dvals). For identity
// programs the stored values are returned without copying.
func (fr *fusedRun) evalSparseRow(w *aggWorker, r int, cidx []int, dvals []float64) []float64 {
	if fr.kind == evalIdentity && fr.a == fr.driver {
		return dvals
	}
	if cap(w.rowBuf) < len(dvals) {
		w.rowBuf = make([]float64, len(dvals), max(len(dvals), fr.cols))
	}
	dst := w.rowBuf[:len(dvals)]
	switch fr.kind {
	case evalUnary:
		// fr.a == fr.driver (annihilation guarantees the driver is reached)
		for i, v := range dvals {
			dst[i] = fr.un.Apply(v)
		}
	case evalBinary:
		for i, v := range dvals {
			c := cidx[i]
			va, vb := v, v
			if fr.a != fr.driver {
				va = fr.argAt(w, fr.a, r, c)
			}
			if fr.b != fr.driver {
				vb = fr.argAt(w, fr.b, r, c)
			}
			dst[i] = fr.bin.Apply(va, vb)
		}
	default:
		if w.stack == nil {
			w.stack = make([]float64, CellMaxStack)
		}
		for i, v := range dvals {
			dst[i] = fr.evalCellSparse(w, r, cidx[i], v)
		}
	}
	return dst
}

// argAt reads argument arg at (r, c) in sparse-driver mode: scalars from the
// const table, dense matrices from their backing array, sparse matrices by
// CSR lookup.
func (fr *fusedRun) argAt(w *aggWorker, arg, r, c int) float64 {
	a := fr.args[arg]
	if a.Mat == nil {
		return w.consts[arg]
	}
	if s := fr.csrs[arg]; s != nil {
		return s.flatGet(r, c)
	}
	return a.Mat.dense[r*fr.cols+c]
}

// evalCellSparse interprets a general program at one stored driver cell.
func (fr *fusedRun) evalCellSparse(w *aggWorker, r, c int, dv float64) float64 {
	sp := 0
	for _, ins := range fr.prog.Instrs {
		switch ins.Code {
		case CellLoad:
			var v float64
			if ins.Arg == fr.driver {
				v = dv
			} else {
				v = fr.argAt(w, ins.Arg, r, c)
			}
			w.stack[sp] = v
			sp++
		case CellUnary:
			w.stack[sp-1] = ins.Un.Apply(w.stack[sp-1])
		case CellBinary:
			sp--
			w.stack[sp-1] = ins.Bin.Apply(w.stack[sp-1], w.stack[sp])
		}
	}
	return w.stack[0]
}

// FusedAgg evaluates a fused cellwise-aggregate pipeline in a single pass
// over the inputs: the cell program is evaluated per cell and the results
// flow directly into the aggregate, with no full-size intermediate. Full
// aggregates (sum, min, max) return a 1x1 block; colSums returns 1 x cols and
// rowSums returns rows x 1.
//
// When the driver argument (the first matrix argument) is sparse and the
// program annihilates on it, only the driver's stored cells are visited
// (sparse-safe semantics). Results are reproducible across thread counts:
// partial aggregates are formed over fixed row chunks and combined in chunk
// order.
func FusedAgg(prog *CellProgram, agg AggKind, args []CellArg, threads int) (*MatrixBlock, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if len(args) != prog.NumArgs {
		return nil, fmt.Errorf("matrix: fused agg got %d arguments, program wants %d", len(args), prog.NumArgs)
	}
	fr := &fusedRun{prog: prog, args: args, driver: -1, csrs: make([]*CSR, len(args))}
	for i, a := range args {
		if a.Mat == nil {
			continue
		}
		if fr.driver < 0 {
			fr.driver = i
			fr.rows, fr.cols = a.Mat.rows, a.Mat.cols
		} else if a.Mat.rows != fr.rows || a.Mat.cols != fr.cols {
			return nil, fmt.Errorf("matrix: fused agg argument %d is %dx%d, want %dx%d",
				i, a.Mat.rows, a.Mat.cols, fr.rows, fr.cols)
		}
	}
	if fr.driver < 0 {
		return nil, fmt.Errorf("matrix: fused agg requires at least one matrix argument")
	}
	// pre-compact sparse structures once, single-threaded, so workers only
	// perform lock-free reads
	for i, a := range args {
		if a.Mat != nil && a.Mat.IsSparse() {
			fr.csrs[i] = a.Mat.csr()
		}
	}
	fr.sparse = fr.csrs[fr.driver] != nil && prog.Annihilating
	fr.kind, fr.a, fr.b, fr.un, fr.bin = classify(prog)

	num, size := fusedChunks(fr.rows)
	nw := chunkWorkers(num, threads, fr.rows*fr.cols)
	workers := make([]*aggWorker, nw)
	worker := func(wi int) *aggWorker {
		if workers[wi] == nil {
			workers[wi] = fr.newWorker()
		}
		return workers[wi]
	}
	ds := fr.csrs[fr.driver] // nil unless the driver is sparse

	switch agg {
	case AggSum, AggMin, AggMax:
		partials := make([]float64, num)
		runChunks(fr.rows, num, size, nw, func(wi, ci, r0, r1 int) {
			w := worker(wi)
			acc := aggInit(agg)
			for r := r0; r < r1; r++ {
				var vals []float64
				if fr.sparse {
					lo, hi := ds.RowPtr[r], ds.RowPtr[r+1]
					vals = fr.evalSparseRow(w, r, ds.ColIdx[lo:hi], ds.Values[lo:hi])
				} else {
					fr.loadRow(w, r)
					vals = fr.evalDenseRow(w)
				}
				switch agg {
				case AggSum:
					var rowAcc float64
					for _, v := range vals {
						rowAcc += v
					}
					acc += rowAcc
				case AggMin:
					for _, v := range vals {
						if v < acc {
							acc = v
						}
					}
				case AggMax:
					for _, v := range vals {
						if v > acc {
							acc = v
						}
					}
				}
			}
			partials[ci] = acc
		})
		acc := aggInit(agg)
		switch agg {
		case AggSum:
			acc = 0
			for _, p := range partials {
				acc += p
			}
		case AggMin:
			for _, p := range partials {
				if p < acc {
					acc = p
				}
			}
		case AggMax:
			for _, p := range partials {
				if p > acc {
					acc = p
				}
			}
		}
		if fr.sparse && agg != AggSum {
			// skipped cells are exact zeros; fold them in once
			if int64(len(ds.Values)) < int64(fr.rows)*int64(fr.cols) {
				if agg == AggMin && 0 < acc {
					acc = 0
				}
				if agg == AggMax && 0 > acc {
					acc = 0
				}
			}
		}
		out := NewDense(1, 1)
		out.Set(0, 0, acc)
		return out, nil

	case AggRowSums:
		out := NewDense(fr.rows, 1)
		runChunks(fr.rows, num, size, nw, func(wi, ci, r0, r1 int) {
			w := worker(wi)
			for r := r0; r < r1; r++ {
				var vals []float64
				if fr.sparse {
					lo, hi := ds.RowPtr[r], ds.RowPtr[r+1]
					vals = fr.evalSparseRow(w, r, ds.ColIdx[lo:hi], ds.Values[lo:hi])
				} else {
					fr.loadRow(w, r)
					vals = fr.evalDenseRow(w)
				}
				var rowAcc float64
				for _, v := range vals {
					rowAcc += v
				}
				out.dense[r] = rowAcc
			}
		})
		out.RecomputeNNZ()
		return out, nil

	case AggColSums:
		out := NewDense(1, fr.cols)
		parts := make([][]float64, num)
		runChunks(fr.rows, num, size, nw, func(wi, ci, r0, r1 int) {
			w := worker(wi)
			buf := make([]float64, fr.cols)
			for r := r0; r < r1; r++ {
				if fr.sparse {
					lo, hi := ds.RowPtr[r], ds.RowPtr[r+1]
					cidx := ds.ColIdx[lo:hi]
					vals := fr.evalSparseRow(w, r, cidx, ds.Values[lo:hi])
					for i, v := range vals {
						buf[cidx[i]] += v
					}
				} else {
					fr.loadRow(w, r)
					vals := fr.evalDenseRow(w)
					for c, v := range vals {
						buf[c] += v
					}
				}
			}
			parts[ci] = buf
		})
		for _, buf := range parts {
			if buf == nil {
				continue
			}
			for c, v := range buf {
				out.dense[c] += v
			}
		}
		out.RecomputeNNZ()
		return out, nil
	}
	return nil, fmt.Errorf("matrix: unknown fused aggregate %d", agg)
}

func aggInit(agg AggKind) float64 {
	switch agg {
	case AggMin:
		return math.Inf(1)
	case AggMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// --- fused matrix-multiply chain -------------------------------------------

// MMChain computes t(X) %*% (X %*% v) — or t(X) %*% (w * (X %*% v)) when w
// is non-nil — in a single pass over X, without materializing the m x 1
// intermediate or the transpose: per row, the inner product with v is formed,
// optionally scaled by w[r], and scattered back onto the output through the
// same row. Partial outputs are accumulated per fixed row chunk and combined
// in chunk order (deterministic across thread counts).
func MMChain(x, v, w *MatrixBlock, threads int) (*MatrixBlock, error) {
	if v.cols != 1 || v.rows != x.cols {
		return nil, fmt.Errorf("matrix: mmchain vector is %dx%d, want %dx1", v.rows, v.cols, x.cols)
	}
	if w != nil && (w.cols != 1 || w.rows != x.rows) {
		return nil, fmt.Errorf("matrix: mmchain weights are %dx%d, want %dx1", w.rows, w.cols, x.rows)
	}
	m, n := x.rows, x.cols
	vd := vectorValues(v)
	var wd []float64
	if w != nil {
		wd = vectorValues(w)
	}
	var xs *CSR
	if x.IsSparse() {
		xs = x.csr()
	}
	num, size := fusedChunks(m)
	nw := chunkWorkers(num, threads, m*n)
	parts := make([][]float64, num)
	runChunks(m, num, size, nw, func(wi, ci, r0, r1 int) {
		buf := make([]float64, n)
		if xs != nil {
			for r := r0; r < r1; r++ {
				lo, hi := xs.RowPtr[r], xs.RowPtr[r+1]
				var dot float64
				for p := lo; p < hi; p++ {
					dot += float64(xs.Values[p] * vd[xs.ColIdx[p]])
				}
				if wd != nil {
					dot *= wd[r]
				}
				if dot == 0 {
					continue
				}
				for p := lo; p < hi; p++ {
					buf[xs.ColIdx[p]] += float64(dot * xs.Values[p])
				}
			}
		} else {
			// Register-blocked dense leg: four rows per step share one pass
			// over v, with four independent dot accumulators (breaking the
			// loop-carried add dependency of the row-at-a-time loop), then
			// scatter row by row in ascending order — each dot and each
			// buf[j] update sequence is exactly the one the single-row loop
			// produces, so results stay bitwise-identical.
			r := r0
			for ; r+4 <= r1; r += 4 {
				row0 := x.dense[r*n : (r+1)*n]
				row1 := x.dense[(r+1)*n : (r+2)*n]
				row2 := x.dense[(r+2)*n : (r+3)*n]
				row3 := x.dense[(r+3)*n : (r+4)*n]
				var d0, d1, d2, d3 float64
				for j, vj := range vd {
					d0 += float64(row0[j] * vj)
					d1 += float64(row1[j] * vj)
					d2 += float64(row2[j] * vj)
					d3 += float64(row3[j] * vj)
				}
				if wd != nil {
					d0 *= wd[r]
					d1 *= wd[r+1]
					d2 *= wd[r+2]
					d3 *= wd[r+3]
				}
				mmchainScatter(buf, row0, d0)
				mmchainScatter(buf, row1, d1)
				mmchainScatter(buf, row2, d2)
				mmchainScatter(buf, row3, d3)
			}
			for ; r < r1; r++ {
				row := x.dense[r*n : (r+1)*n]
				var dot float64
				for j, xv := range row {
					dot += float64(xv * vd[j])
				}
				if wd != nil {
					dot *= wd[r]
				}
				mmchainScatter(buf, row, dot)
			}
		}
		parts[ci] = buf
	})
	out := NewDense(n, 1)
	var nnz int64
	for j := 0; j < n; j++ {
		var acc float64
		for _, buf := range parts {
			if buf != nil {
				acc += buf[j]
			}
		}
		out.dense[j] = acc
		if acc != 0 {
			nnz++
		}
	}
	out.nnz = nnz
	return out, nil
}

// mmchainScatter accumulates dot * row into buf, skipping zero dots (the
// annihilation short-cut of the row-at-a-time mmchain loop).
func mmchainScatter(buf, row []float64, dot float64) {
	if dot == 0 {
		return
	}
	for j, xv := range row {
		buf[j] += float64(dot * xv)
	}
}

// vectorValues returns the dense values of a column vector (densifying
// sparse vectors directly into a fresh dense image; vectors are small
// relative to the fused pass).
func vectorValues(v *MatrixBlock) []float64 {
	return asDense(v).dense
}
