package matrix

import (
	"math"
	"sort"
)

// fullAgg runs the identity fused pipeline for a full aggregate; the identity
// program over one matrix argument cannot fail validation.
func fullAgg(m *MatrixBlock, agg AggKind, threads int) float64 {
	out, err := FusedAgg(IdentityProgram(), agg, []CellArg{{Mat: m}}, threads)
	if err != nil {
		panic(err) // unreachable: identity program over one matrix
	}
	return out.dense[0]
}

// Sum returns the sum of all cells, accumulated multi-threaded over fixed row
// chunks (reproducible across thread counts).
func Sum(m *MatrixBlock, threads int) float64 {
	return fullAgg(m, AggSum, threads)
}

// SumSq returns the sum of squared cells.
func SumSq(m *MatrixBlock, threads int) float64 {
	prog := &CellProgram{
		Instrs:       []CellInstr{{Code: CellLoad, Arg: 0}, {Code: CellLoad, Arg: 0}, {Code: CellBinary, Bin: OpMul}},
		NumArgs:      1,
		Annihilating: true,
	}
	out, err := FusedAgg(prog, AggSum, []CellArg{{Mat: m}}, threads)
	if err != nil {
		panic(err) // unreachable
	}
	return out.dense[0]
}

// Mean returns the mean over all cells (including zeros).
func Mean(m *MatrixBlock, threads int) float64 {
	cells := float64(m.rows * m.cols)
	if cells == 0 {
		return math.NaN()
	}
	return Sum(m, threads) / cells
}

// Variance returns the sample variance over all cells.
func Variance(m *MatrixBlock) float64 {
	cells := float64(m.rows * m.cols)
	if cells <= 1 {
		return math.NaN()
	}
	mu := Mean(m, 1)
	var s float64
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			d := m.Get(r, c) - mu
			s += float64(d * d)
		}
	}
	return s / (cells - 1)
}

// Min returns the minimum cell value.
func Min(m *MatrixBlock, threads int) float64 {
	return fullAgg(m, AggMin, threads)
}

// Max returns the maximum cell value.
func Max(m *MatrixBlock, threads int) float64 {
	return fullAgg(m, AggMax, threads)
}

// Trace returns the sum of diagonal cells of a square matrix.
func Trace(m *MatrixBlock) float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	var s float64
	for i := 0; i < n; i++ {
		s += m.Get(i, i)
	}
	return s
}

// ColSums returns a 1 x cols row vector with the per-column sums.
func ColSums(m *MatrixBlock, threads int) *MatrixBlock {
	out, err := FusedAgg(IdentityProgram(), AggColSums, []CellArg{{Mat: m}}, threads)
	if err != nil {
		panic(err) // unreachable
	}
	return out
}

// RowSums returns a rows x 1 column vector with the per-row sums.
func RowSums(m *MatrixBlock, threads int) *MatrixBlock {
	out, err := FusedAgg(IdentityProgram(), AggRowSums, []CellArg{{Mat: m}}, threads)
	if err != nil {
		panic(err) // unreachable
	}
	return out
}

// ColMeans returns a 1 x cols row vector with the per-column means.
func ColMeans(m *MatrixBlock, threads int) *MatrixBlock {
	out := ColSums(m, threads)
	if m.rows > 0 {
		for i := range out.dense {
			out.dense[i] /= float64(m.rows)
		}
	}
	out.RecomputeNNZ()
	return out
}

// RowMeans returns a rows x 1 column vector with the per-row means.
func RowMeans(m *MatrixBlock, threads int) *MatrixBlock {
	out := RowSums(m, threads)
	if m.cols > 0 {
		for i := range out.dense {
			out.dense[i] /= float64(m.cols)
		}
	}
	out.RecomputeNNZ()
	return out
}

// colExtreme computes per-column min or max.
func colExtreme(m *MatrixBlock, isMax bool) *MatrixBlock {
	out := NewDense(1, m.cols)
	for c := 0; c < m.cols; c++ {
		best := math.Inf(1)
		if isMax {
			best = math.Inf(-1)
		}
		for r := 0; r < m.rows; r++ {
			v := m.Get(r, c)
			if (isMax && v > best) || (!isMax && v < best) {
				best = v
			}
		}
		out.dense[c] = best
	}
	out.RecomputeNNZ()
	return out
}

// ColMins returns per-column minimums as a 1 x cols vector.
func ColMins(m *MatrixBlock) *MatrixBlock { return colExtreme(m, false) }

// ColMaxs returns per-column maximums as a 1 x cols vector.
func ColMaxs(m *MatrixBlock) *MatrixBlock { return colExtreme(m, true) }

// rowExtreme computes per-row min or max.
func rowExtreme(m *MatrixBlock, isMax bool) *MatrixBlock {
	out := NewDense(m.rows, 1)
	for r := 0; r < m.rows; r++ {
		best := math.Inf(1)
		if isMax {
			best = math.Inf(-1)
		}
		for c := 0; c < m.cols; c++ {
			v := m.Get(r, c)
			if (isMax && v > best) || (!isMax && v < best) {
				best = v
			}
		}
		out.dense[r] = best
	}
	out.RecomputeNNZ()
	return out
}

// RowMins returns per-row minimums as a rows x 1 vector.
func RowMins(m *MatrixBlock) *MatrixBlock { return rowExtreme(m, false) }

// RowMaxs returns per-row maximums as a rows x 1 vector.
func RowMaxs(m *MatrixBlock) *MatrixBlock { return rowExtreme(m, true) }

// RowIndexMax returns, per row, the 1-based column index of the maximum
// value (DML rowIndexMax semantics).
func RowIndexMax(m *MatrixBlock) *MatrixBlock {
	out := NewDense(m.rows, 1)
	for r := 0; r < m.rows; r++ {
		best := math.Inf(-1)
		idx := 1
		for c := 0; c < m.cols; c++ {
			if v := m.Get(r, c); v > best {
				best = v
				idx = c + 1
			}
		}
		out.dense[r] = float64(idx)
	}
	out.RecomputeNNZ()
	return out
}

// ColVars returns the per-column sample variances as a 1 x cols vector.
func ColVars(m *MatrixBlock) *MatrixBlock {
	means := ColMeans(m, 1)
	out := NewDense(1, m.cols)
	if m.rows <= 1 {
		return out
	}
	for c := 0; c < m.cols; c++ {
		var s float64
		mu := means.dense[c]
		for r := 0; r < m.rows; r++ {
			d := m.Get(r, c) - mu
			s += float64(d * d)
		}
		out.dense[c] = s / float64(m.rows-1)
	}
	out.RecomputeNNZ()
	return out
}

// ColSds returns the per-column sample standard deviations as a 1 x cols
// vector.
func ColSds(m *MatrixBlock) *MatrixBlock {
	out := ColVars(m)
	for i := range out.dense {
		out.dense[i] = math.Sqrt(out.dense[i])
	}
	out.RecomputeNNZ()
	return out
}

// Quantile returns the p-quantile (0 <= p <= 1) of a column vector using the
// nearest-rank method on sorted values.
func Quantile(v *MatrixBlock, p float64) float64 {
	n := v.rows * v.cols
	if n == 0 {
		return math.NaN()
	}
	vals := make([]float64, 0, n)
	for r := 0; r < v.rows; r++ {
		for c := 0; c < v.cols; c++ {
			vals = append(vals, v.Get(r, c))
		}
	}
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 1 {
		return vals[len(vals)-1]
	}
	idx := int(math.Ceil(p*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	return vals[idx]
}

// Median returns the 0.5-quantile of a vector.
func Median(v *MatrixBlock) float64 { return Quantile(v, 0.5) }

// CumSumCols returns the column-wise cumulative sums (DML cumsum semantics).
func CumSumCols(m *MatrixBlock) *MatrixBlock {
	out := NewDense(m.rows, m.cols)
	for c := 0; c < m.cols; c++ {
		var acc float64
		for r := 0; r < m.rows; r++ {
			acc += m.Get(r, c)
			out.dense[r*m.cols+c] = acc
		}
	}
	out.RecomputeNNZ()
	return out
}

// Table computes a contingency table over two column vectors of positive
// integer codes: out[i,j] counts rows where a==i+1 and b==j+1 (DML table).
func Table(a, b *MatrixBlock) *MatrixBlock {
	maxA, maxB := 0, 0
	n := a.rows
	for r := 0; r < n; r++ {
		if v := int(a.Get(r, 0)); v > maxA {
			maxA = v
		}
		if v := int(b.Get(r, 0)); v > maxB {
			maxB = v
		}
	}
	out := NewDense(maxA, maxB)
	for r := 0; r < n; r++ {
		i, j := int(a.Get(r, 0))-1, int(b.Get(r, 0))-1
		if i >= 0 && j >= 0 {
			out.dense[i*maxB+j]++
		}
	}
	out.RecomputeNNZ()
	return out
}
