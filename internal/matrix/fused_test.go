package matrix

import (
	"math"
	"testing"
)

// relDiff returns |a-b| / max(1, |a|, |b|).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / scale
}

func requireClose(t *testing.T, got, want *MatrixBlock, context string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: got %dx%d, want %dx%d", context, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for r := 0; r < want.Rows(); r++ {
		for c := 0; c < want.Cols(); c++ {
			if relDiff(got.Get(r, c), want.Get(r, c)) > 1e-9 {
				t.Fatalf("%s: cell (%d,%d) = %v, want %v", context, r, c, got.Get(r, c), want.Get(r, c))
			}
		}
	}
}

// fusedCase pairs a cell program with the equivalent unfused composition.
type fusedCase struct {
	name     string
	prog     *CellProgram
	args     func(x, y *MatrixBlock) []CellArg
	unfused  func(x, y *MatrixBlock) *MatrixBlock // materialized cellwise result
	sparseOK bool                                 // program annihilates on arg 0
}

func fusedCases() []fusedCase {
	return []fusedCase{
		{
			name: "mul", // sum(X*Y)-style pipelines
			prog: &CellProgram{
				Instrs: []CellInstr{
					{Code: CellLoad, Arg: 0}, {Code: CellLoad, Arg: 1}, {Code: CellBinary, Bin: OpMul},
				},
				NumArgs: 2, Annihilating: true,
			},
			args: func(x, y *MatrixBlock) []CellArg { return []CellArg{{Mat: x}, {Mat: y}} },
			unfused: func(x, y *MatrixBlock) *MatrixBlock {
				m, _ := CellwiseOp(x, y, OpMul, 1)
				return m
			},
			sparseOK: true,
		},
		{
			name: "sq-diff", // sum((X-Y)^2)-style pipelines
			prog: &CellProgram{
				Instrs: []CellInstr{
					{Code: CellLoad, Arg: 0}, {Code: CellLoad, Arg: 1}, {Code: CellBinary, Bin: OpSub},
					{Code: CellLoad, Arg: 2}, {Code: CellBinary, Bin: OpPow},
				},
				NumArgs: 3,
			},
			args: func(x, y *MatrixBlock) []CellArg { return []CellArg{{Mat: x}, {Mat: y}, {Scalar: 2}} },
			unfused: func(x, y *MatrixBlock) *MatrixBlock {
				d, _ := CellwiseOp(x, y, OpSub, 1)
				return ScalarOp(d, 2, OpPow, false, 1)
			},
		},
		{
			name: "abs-scale", // sum(abs(X) * 0.5)
			prog: &CellProgram{
				Instrs: []CellInstr{
					{Code: CellLoad, Arg: 0}, {Code: CellUnary, Un: OpAbs},
					{Code: CellLoad, Arg: 1}, {Code: CellBinary, Bin: OpMul},
				},
				NumArgs: 2, Annihilating: true,
			},
			args: func(x, y *MatrixBlock) []CellArg { return []CellArg{{Mat: x}, {Scalar: 0.5}} },
			unfused: func(x, y *MatrixBlock) *MatrixBlock {
				return ScalarOp(UnaryApply(x, OpAbs, 1), 0.5, OpMul, false, 1)
			},
			sparseOK: true,
		},
		{
			name: "add-mul-exp", // sum(exp(X)*Y + X) — not annihilating (exp(0) = 1)
			prog: &CellProgram{
				Instrs: []CellInstr{
					{Code: CellLoad, Arg: 0}, {Code: CellUnary, Un: OpExp},
					{Code: CellLoad, Arg: 1}, {Code: CellBinary, Bin: OpMul},
					{Code: CellLoad, Arg: 0}, {Code: CellBinary, Bin: OpAdd},
				},
				NumArgs: 2,
			},
			args: func(x, y *MatrixBlock) []CellArg { return []CellArg{{Mat: x}, {Mat: y}} },
			unfused: func(x, y *MatrixBlock) *MatrixBlock {
				e := UnaryApply(x, OpExp, 1)
				p, _ := CellwiseOp(e, y, OpMul, 1)
				s, _ := CellwiseOp(p, x, OpAdd, 1)
				return s
			},
		},
	}
}

func unfusedAgg(agg AggKind, m *MatrixBlock) *MatrixBlock {
	switch agg {
	case AggSum:
		out := NewDense(1, 1)
		out.Set(0, 0, referenceSum(m))
		return out
	case AggMin:
		out := NewDense(1, 1)
		out.Set(0, 0, referenceExtreme(m, false))
		return out
	case AggMax:
		out := NewDense(1, 1)
		out.Set(0, 0, referenceExtreme(m, true))
		return out
	case AggColSums:
		return referenceColSums(m)
	case AggRowSums:
		return referenceRowSums(m)
	}
	return nil
}

// reference aggregates: plain sequential loops, independent of the fused
// kernels under test.
func referenceSum(m *MatrixBlock) float64 {
	var s float64
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			s += m.Get(r, c)
		}
	}
	return s
}

func referenceExtreme(m *MatrixBlock, isMax bool) float64 {
	best := math.Inf(1)
	if isMax {
		best = math.Inf(-1)
	}
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			v := m.Get(r, c)
			if (isMax && v > best) || (!isMax && v < best) {
				best = v
			}
		}
	}
	return best
}

func referenceColSums(m *MatrixBlock) *MatrixBlock {
	out := NewDense(1, m.Cols())
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			out.Set(0, c, out.Get(0, c)+m.Get(r, c))
		}
	}
	return out
}

func referenceRowSums(m *MatrixBlock) *MatrixBlock {
	out := NewDense(m.Rows(), 1)
	for r := 0; r < m.Rows(); r++ {
		var s float64
		for c := 0; c < m.Cols(); c++ {
			s += m.Get(r, c)
		}
		out.Set(r, 0, s)
	}
	return out
}

// TestFusedAggMatchesUnfused is the property test of the fusion subsystem:
// every fused kernel must match the unfused operator composition on dense and
// sparse inputs, for threads in {1, 4}, within 1e-9 relative tolerance.
func TestFusedAggMatchesUnfused(t *testing.T) {
	aggs := []AggKind{AggSum, AggMin, AggMax, AggColSums, AggRowSums}
	shapes := [][2]int{{1, 1}, {7, 5}, {63, 17}, {200, 33}}
	for _, tc := range fusedCases() {
		for _, sparsity := range []float64{1.0, 0.15} {
			for _, shape := range shapes {
				x := RandUniform(shape[0], shape[1], -1, 1, sparsity, int64(shape[0]*7+1))
				y := RandUniform(shape[0], shape[1], -1, 1, sparsity, int64(shape[0]*13+2))
				if sparsity < 1 {
					x.ToSparse()
				}
				want := tc.unfused(x, y)
				for _, agg := range aggs {
					ref := unfusedAgg(agg, want)
					for _, threads := range []int{1, 4} {
						got, err := FusedAgg(tc.prog, agg, tc.args(x, y), threads)
						if err != nil {
							t.Fatalf("%s/%s: %v", tc.name, agg, err)
						}
						requireClose(t, got, ref, tc.name+"/"+agg.String())
					}
				}
			}
		}
	}
}

// TestFusedAggDeterministicAcrossThreads asserts bitwise reproducibility of
// the chunk-ordered accumulation for any thread count.
func TestFusedAggDeterministicAcrossThreads(t *testing.T) {
	x := RandUniform(501, 37, -1, 1, 1.0, 42)
	y := RandUniform(501, 37, -1, 1, 1.0, 43)
	prog := fusedCases()[0].prog
	args := []CellArg{{Mat: x}, {Mat: y}}
	base, err := FusedAgg(prog, AggSum, args, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 3, 4, 8} {
		got, err := FusedAgg(prog, AggSum, args, threads)
		if err != nil {
			t.Fatal(err)
		}
		if got.Get(0, 0) != base.Get(0, 0) {
			t.Errorf("threads=%d: sum %v != threads=1 sum %v (must be bitwise equal)",
				threads, got.Get(0, 0), base.Get(0, 0))
		}
	}
}

// TestFusedAggSparseDriverSkipsZeros checks the sparse-driver path against
// the dense evaluation for an annihilating program over a sparse driver and a
// dense second operand.
func TestFusedAggSparseDriverSkipsZeros(t *testing.T) {
	x := RandUniform(120, 40, -1, 1, 0.1, 7)
	x.ToSparse()
	y := RandUniform(120, 40, -1, 1, 1.0, 8)
	prog := fusedCases()[0].prog // X*Y, annihilating
	dense := x.Copy().ToDense()
	for _, agg := range []AggKind{AggSum, AggMin, AggMax, AggColSums, AggRowSums} {
		got, err := FusedAgg(prog, agg, []CellArg{{Mat: x}, {Mat: y}}, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := FusedAgg(prog, agg, []CellArg{{Mat: dense}, {Mat: y}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		requireClose(t, got, want, "sparse driver "+agg.String())
	}
}

func TestCellProgramValidate(t *testing.T) {
	bad := []*CellProgram{
		{Instrs: nil, NumArgs: 0},
		{Instrs: []CellInstr{{Code: CellUnary}}, NumArgs: 0},
		{Instrs: []CellInstr{{Code: CellLoad, Arg: 2}}, NumArgs: 1},
		{Instrs: []CellInstr{{Code: CellLoad, Arg: 0}, {Code: CellLoad, Arg: 0}}, NumArgs: 1},
		{Instrs: []CellInstr{{Code: CellLoad, Arg: 0}, {Code: CellBinary, Bin: OpAdd}}, NumArgs: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("program %d should fail validation", i)
		}
	}
	if err := IdentityProgram().Validate(); err != nil {
		t.Errorf("identity program: %v", err)
	}
}

// TestFusedAggIdentityScalarLoad: an identity program whose load references a
// scalar argument (never emitted by the matcher, but expressible through the
// exported API) must still aggregate the broadcast scalar over the matrix
// argument's shape.
func TestFusedAggIdentityScalarLoad(t *testing.T) {
	prog := &CellProgram{Instrs: []CellInstr{{Code: CellLoad, Arg: 0}}, NumArgs: 2}
	m := NewDense(100, 10)
	out, err := FusedAgg(prog, AggSum, []CellArg{{Scalar: 5}, {Mat: m}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Get(0, 0); got != 5000 {
		t.Errorf("sum of broadcast scalar 5 over 100x10 = %v, want 5000", got)
	}
}

func TestFusedAggArgErrors(t *testing.T) {
	prog := IdentityProgram()
	if _, err := FusedAgg(prog, AggSum, nil, 1); err == nil {
		t.Error("missing arguments should error")
	}
	if _, err := FusedAgg(prog, AggSum, []CellArg{{Scalar: 1}}, 1); err == nil {
		t.Error("scalar-only arguments should error")
	}
	p2 := fusedCases()[0].prog
	a := NewDense(3, 3)
	b := NewDense(2, 2)
	if _, err := FusedAgg(p2, AggSum, []CellArg{{Mat: a}, {Mat: b}}, 1); err == nil {
		t.Error("shape mismatch should error")
	}
}

// referenceMMChain composes the chain from unfused kernels.
func referenceMMChain(x, v, w *MatrixBlock, threads int) *MatrixBlock {
	xv, err := Multiply(x, v, threads)
	if err != nil {
		panic(err)
	}
	if w != nil {
		xv, err = CellwiseOp(w, xv, OpMul, threads)
		if err != nil {
			panic(err)
		}
	}
	out, err := Multiply(Transpose(x), xv, threads)
	if err != nil {
		panic(err)
	}
	return out
}

// TestMMChainMatchesUnfused checks both chain types against the unfused
// composition on dense and sparse X, threads in {1, 4}.
func TestMMChainMatchesUnfused(t *testing.T) {
	for _, sparsity := range []float64{1.0, 0.1} {
		for _, shape := range [][2]int{{5, 3}, {80, 20}, {301, 45}} {
			x := RandUniform(shape[0], shape[1], -1, 1, sparsity, int64(shape[0]))
			if sparsity < 1 {
				x.ToSparse()
			}
			v := RandUniform(shape[1], 1, -1, 1, 1.0, 99)
			w := RandUniform(shape[0], 1, 0, 1, 1.0, 98)
			for _, threads := range []int{1, 4} {
				got, err := MMChain(x, v, nil, threads)
				if err != nil {
					t.Fatal(err)
				}
				requireClose(t, got, referenceMMChain(x, v, nil, 1), "xtxv")
				gotW, err := MMChain(x, v, w, threads)
				if err != nil {
					t.Fatal(err)
				}
				requireClose(t, gotW, referenceMMChain(x, v, w, 1), "xtwxv")
			}
		}
	}
}

func TestMMChainDeterministicAcrossThreads(t *testing.T) {
	x := RandUniform(513, 31, -1, 1, 1.0, 5)
	v := RandUniform(31, 1, -1, 1, 1.0, 6)
	base, err := MMChain(x, v, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 4, 7} {
		got, err := MMChain(x, v, nil, threads)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equals(base, 0) {
			t.Errorf("threads=%d result differs bitwise from threads=1", threads)
		}
	}
}

func TestMMChainShapeErrors(t *testing.T) {
	x := NewDense(4, 3)
	if _, err := MMChain(x, NewDense(4, 1), nil, 1); err == nil {
		t.Error("wrong v length should error")
	}
	if _, err := MMChain(x, NewDense(3, 2), nil, 1); err == nil {
		t.Error("matrix v should error")
	}
	if _, err := MMChain(x, NewDense(3, 1), NewDense(3, 1), 1); err == nil {
		t.Error("wrong w length should error")
	}
}

// TestParallelAggregatesMatchReference pins the rewritten multi-threaded
// aggregation kernels to sequential reference loops.
func TestParallelAggregatesMatchReference(t *testing.T) {
	for _, sparsity := range []float64{1.0, 0.2} {
		m := RandUniform(257, 19, -2, 2, sparsity, 77)
		if sparsity < 1 {
			m.ToSparse()
		}
		for _, threads := range []int{1, 4} {
			if relDiff(Sum(m, threads), referenceSum(m)) > 1e-9 {
				t.Errorf("Sum mismatch (threads=%d)", threads)
			}
			if Min(m, threads) != referenceExtreme(m, false) {
				t.Errorf("Min mismatch (threads=%d)", threads)
			}
			if Max(m, threads) != referenceExtreme(m, true) {
				t.Errorf("Max mismatch (threads=%d)", threads)
			}
			requireClose(t, ColSums(m, threads), referenceColSums(m), "ColSums")
			requireClose(t, RowSums(m, threads), referenceRowSums(m), "RowSums")
		}
	}
}
