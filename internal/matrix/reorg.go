package matrix

import (
	"fmt"
	"sort"
)

// Transpose returns t(m). Dense inputs use a cache-blocked transpose; sparse
// inputs build the transposed CSR via a counting pass.
func Transpose(m *MatrixBlock) *MatrixBlock {
	if m.IsSparse() {
		return transposeSparse(m)
	}
	out := NewDense(m.cols, m.rows)
	const blk = 64
	for rr := 0; rr < m.rows; rr += blk {
		rmax := min(rr+blk, m.rows)
		for cc := 0; cc < m.cols; cc += blk {
			cmax := min(cc+blk, m.cols)
			for r := rr; r < rmax; r++ {
				base := r * m.cols
				for c := cc; c < cmax; c++ {
					out.dense[c*m.rows+r] = m.dense[base+c]
				}
			}
		}
	}
	out.nnz = m.nnz
	return out
}

func transposeSparse(m *MatrixBlock) *MatrixBlock {
	s := m.csr()
	rows, cols := m.cols, m.rows // transposed dims
	counts := make([]int, rows+1)
	for _, c := range s.ColIdx {
		counts[c+1]++
	}
	for i := 1; i <= rows; i++ {
		counts[i] += counts[i-1]
	}
	rowPtr := counts
	colIdx := make([]int, len(s.ColIdx))
	values := make([]float64, len(s.Values))
	next := make([]int, rows)
	copy(next, rowPtr[:rows])
	for r := 0; r < s.RowsN; r++ {
		for p := s.RowPtr[r]; p < s.RowPtr[r+1]; p++ {
			c := s.ColIdx[p]
			pos := next[c]
			colIdx[pos] = r
			values[pos] = s.Values[p]
			next[c]++
		}
	}
	csr := &CSR{RowsN: rows, ColsN: cols, RowPtr: rowPtr, ColIdx: colIdx, Values: values}
	return &MatrixBlock{rows: rows, cols: cols, sparse: csr, nnz: csr.NNZ()}
}

// Diag implements DML diag semantics: for a column vector it returns a square
// diagonal matrix; for a square matrix it extracts the diagonal as a column
// vector.
func Diag(m *MatrixBlock) (*MatrixBlock, error) {
	if m.cols == 1 {
		n := m.rows
		out := NewDense(n, n)
		for i := 0; i < n; i++ {
			out.dense[i*n+i] = m.Get(i, 0)
		}
		out.RecomputeNNZ()
		out.ExamineAndApplySparsity()
		return out, nil
	}
	if m.rows == m.cols {
		out := NewDense(m.rows, 1)
		for i := 0; i < m.rows; i++ {
			out.dense[i] = m.Get(i, i)
		}
		out.RecomputeNNZ()
		return out, nil
	}
	return nil, fmt.Errorf("matrix: diag requires a vector or square matrix, got %dx%d", m.rows, m.cols)
}

// Reverse returns the matrix with its row order reversed (DML rev).
func Reverse(m *MatrixBlock) *MatrixBlock {
	out := NewDense(m.rows, m.cols)
	src := m
	if src.IsSparse() {
		src = m.Copy().ToDense()
	}
	for r := 0; r < m.rows; r++ {
		copy(out.dense[(m.rows-1-r)*m.cols:(m.rows-r)*m.cols], src.dense[r*m.cols:(r+1)*m.cols])
	}
	out.nnz = m.nnz
	return out
}

// CBind concatenates matrices horizontally (column binding). All inputs must
// have the same number of rows.
func CBind(ms ...*MatrixBlock) (*MatrixBlock, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("matrix: cbind requires at least one input")
	}
	rows := ms[0].rows
	totalCols := 0
	for _, m := range ms {
		if m.rows != rows {
			return nil, fmt.Errorf("matrix: cbind row mismatch %d vs %d", rows, m.rows)
		}
		totalCols += m.cols
	}
	out := NewDense(rows, totalCols)
	colOff := 0
	for _, m := range ms {
		src := m
		if src.IsSparse() {
			src = m.Copy().ToDense()
		}
		for r := 0; r < rows; r++ {
			copy(out.dense[r*totalCols+colOff:r*totalCols+colOff+m.cols], src.dense[r*m.cols:(r+1)*m.cols])
		}
		colOff += m.cols
	}
	out.RecomputeNNZ()
	out.ExamineAndApplySparsity()
	return out, nil
}

// RBind concatenates matrices vertically (row binding). All inputs must have
// the same number of columns.
func RBind(ms ...*MatrixBlock) (*MatrixBlock, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("matrix: rbind requires at least one input")
	}
	cols := ms[0].cols
	totalRows := 0
	for _, m := range ms {
		if m.cols != cols {
			return nil, fmt.Errorf("matrix: rbind column mismatch %d vs %d", cols, m.cols)
		}
		totalRows += m.rows
	}
	out := NewDense(totalRows, cols)
	rowOff := 0
	for _, m := range ms {
		src := m
		if src.IsSparse() {
			src = m.Copy().ToDense()
		}
		copy(out.dense[rowOff*cols:(rowOff+m.rows)*cols], src.dense)
		rowOff += m.rows
	}
	out.RecomputeNNZ()
	out.ExamineAndApplySparsity()
	return out, nil
}

// Slice returns the sub-matrix m[rl:ru, cl:cu] with 0-based inclusive lower
// and exclusive upper bounds.
func Slice(m *MatrixBlock, rl, ru, cl, cu int) (*MatrixBlock, error) {
	if rl < 0 || ru > m.rows || cl < 0 || cu > m.cols || rl > ru || cl > cu {
		return nil, fmt.Errorf("matrix: slice [%d:%d,%d:%d] out of bounds for %dx%d", rl, ru, cl, cu, m.rows, m.cols)
	}
	rows, cols := ru-rl, cu-cl
	out := NewDense(rows, cols)
	if m.IsSparse() {
		s := m.csr()
		for r := rl; r < ru; r++ {
			lo, hi := s.RowPtr[r], s.RowPtr[r+1]
			start := lo + sort.SearchInts(s.ColIdx[lo:hi], cl)
			for p := start; p < hi && s.ColIdx[p] < cu; p++ {
				out.dense[(r-rl)*cols+(s.ColIdx[p]-cl)] = s.Values[p]
			}
		}
	} else {
		for r := rl; r < ru; r++ {
			copy(out.dense[(r-rl)*cols:(r-rl+1)*cols], m.dense[r*m.cols+cl:r*m.cols+cu])
		}
	}
	out.RecomputeNNZ()
	out.ExamineAndApplySparsity()
	return out, nil
}

// LeftIndex returns a copy of target with the cells in [rl:ru, cl:cu)
// replaced by src. src must have shape (ru-rl) x (cu-cl).
func LeftIndex(target, src *MatrixBlock, rl, ru, cl, cu int) (*MatrixBlock, error) {
	if rl < 0 || ru > target.rows || cl < 0 || cu > target.cols || rl > ru || cl > cu {
		return nil, fmt.Errorf("matrix: left-index [%d:%d,%d:%d] out of bounds for %dx%d", rl, ru, cl, cu, target.rows, target.cols)
	}
	if src.rows != ru-rl || src.cols != cu-cl {
		return nil, fmt.Errorf("matrix: left-index source %dx%d does not match range %dx%d", src.rows, src.cols, ru-rl, cu-cl)
	}
	out := target.Copy().ToDense()
	for r := rl; r < ru; r++ {
		for c := cl; c < cu; c++ {
			out.dense[r*out.cols+c] = src.Get(r-rl, c-cl)
		}
	}
	out.RecomputeNNZ()
	out.ExamineAndApplySparsity()
	return out, nil
}

// RemoveEmpty removes empty (all-zero) rows or columns. margin must be
// "rows" or "cols".
func RemoveEmpty(m *MatrixBlock, margin string) (*MatrixBlock, error) {
	switch margin {
	case "rows":
		keep := make([]int, 0, m.rows)
		for r := 0; r < m.rows; r++ {
			empty := true
			for c := 0; c < m.cols && empty; c++ {
				if m.Get(r, c) != 0 {
					empty = false
				}
			}
			if !empty {
				keep = append(keep, r)
			}
		}
		out := NewDense(len(keep), m.cols)
		for i, r := range keep {
			for c := 0; c < m.cols; c++ {
				out.dense[i*m.cols+c] = m.Get(r, c)
			}
		}
		out.RecomputeNNZ()
		return out, nil
	case "cols":
		keep := make([]int, 0, m.cols)
		for c := 0; c < m.cols; c++ {
			empty := true
			for r := 0; r < m.rows && empty; r++ {
				if m.Get(r, c) != 0 {
					empty = false
				}
			}
			if !empty {
				keep = append(keep, c)
			}
		}
		out := NewDense(m.rows, len(keep))
		for r := 0; r < m.rows; r++ {
			for i, c := range keep {
				out.dense[r*len(keep)+i] = m.Get(r, c)
			}
		}
		out.RecomputeNNZ()
		return out, nil
	default:
		return nil, fmt.Errorf("matrix: removeEmpty margin must be rows or cols, got %q", margin)
	}
}

// Order sorts the rows of m by the values in column by (0-based), ascending
// or descending, and returns either the permuted matrix or the 1-based index
// permutation vector when indexReturn is true (DML order semantics).
func Order(m *MatrixBlock, by int, decreasing, indexReturn bool) (*MatrixBlock, error) {
	if by < 0 || by >= m.cols {
		return nil, fmt.Errorf("matrix: order by column %d out of bounds for %d columns", by, m.cols)
	}
	idx := make([]int, m.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		vi, vj := m.Get(idx[i], by), m.Get(idx[j], by)
		if decreasing {
			return vi > vj
		}
		return vi < vj
	})
	if indexReturn {
		out := NewDense(m.rows, 1)
		for i, r := range idx {
			out.dense[i] = float64(r + 1)
		}
		out.RecomputeNNZ()
		return out, nil
	}
	out := NewDense(m.rows, m.cols)
	for i, r := range idx {
		for c := 0; c < m.cols; c++ {
			out.dense[i*m.cols+c] = m.Get(r, c)
		}
	}
	out.RecomputeNNZ()
	return out, nil
}

// SelectRows returns the rows of m whose index appears in the 1-based index
// vector idx, in the given order.
func SelectRows(m *MatrixBlock, idx *MatrixBlock) (*MatrixBlock, error) {
	n := idx.rows * idx.cols
	out := NewDense(n, m.cols)
	pos := 0
	for r := 0; r < idx.rows; r++ {
		for c := 0; c < idx.cols; c++ {
			ri := int(idx.Get(r, c)) - 1
			if ri < 0 || ri >= m.rows {
				return nil, fmt.Errorf("matrix: row index %d out of bounds for %d rows", ri+1, m.rows)
			}
			for cc := 0; cc < m.cols; cc++ {
				out.dense[pos*m.cols+cc] = m.Get(ri, cc)
			}
			pos++
		}
	}
	out.RecomputeNNZ()
	return out, nil
}
