package matrix

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultParallelism is the degree of parallelism used by multi-threaded
// kernels when the caller passes threads <= 0.
func DefaultParallelism() int { return runtime.NumCPU() }

func resolveThreads(threads int) int {
	if threads <= 0 {
		return DefaultParallelism()
	}
	return threads
}

// Multiply computes the matrix product a %*% b using the kernel matching the
// operand representations (dense-dense, sparse-dense, dense-sparse or
// sparse-sparse). The dense-dense kernel is the multi-threaded,
// cache-conscious kernel referred to as the "Java-like" kernel in DESIGN.md.
func Multiply(a, b *MatrixBlock, threads int) (*MatrixBlock, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("matrix: multiply dimension mismatch %dx%d %%*%% %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	threads = resolveThreads(threads)
	var out *MatrixBlock
	switch {
	case a.IsSparse() && b.IsSparse():
		out = multSparseSparse(a, b, threads)
	case a.IsSparse():
		out = multSparseDense(a, b, threads)
	case b.IsSparse():
		out = multDenseSparse(a, b, threads)
	default:
		out = multDenseDense(a, b, threads, false)
	}
	return out, nil
}

// MultiplyBLAS computes a %*% b with the register-blocked dense engine that
// stands in for a native BLAS library (SysDS-B in Figure 5(a)): the tiled
// micro-kernel above the size crossover, the unrolled blocked loop below it.
// Sparse inputs are densified first.
func MultiplyBLAS(a, b *MatrixBlock, threads int) (*MatrixBlock, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("matrix: multiply dimension mismatch %dx%d %%*%% %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	threads = resolveThreads(threads)
	ad, bd := asDense(a), asDense(b)
	if gemmUseTiled(ad.rows, ad.cols, bd.cols) {
		out := NewDense(ad.rows, bd.cols)
		out.nnz = accDenseDenseTiled(out, ad, bd, threads)
		return out, nil
	}
	return multDenseDense(ad, bd, threads, true), nil
}

// asDense returns m itself when already dense, or a fresh dense block
// densified directly from the sparse structure — no intermediate sparse copy.
func asDense(m *MatrixBlock) *MatrixBlock {
	if !m.IsSparse() {
		return m
	}
	out := NewDense(m.rows, m.cols)
	s := m.csr()
	for r := 0; r < m.rows; r++ {
		base := r * m.cols
		for p := s.RowPtr[r]; p < s.RowPtr[r+1]; p++ {
			out.dense[base+s.ColIdx[p]] = s.Values[p]
		}
	}
	out.nnz = m.nnz
	return out
}

// parallelRows partitions [0, rows) into contiguous chunks and runs fn on
// each chunk in its own goroutine. Rows are distributed evenly: chunk sizes
// differ by at most one row and exactly min(threads, rows) workers launch, so
// no worker receives a short or empty chunk. Chunk boundaries depend only on
// (rows, threads); every kernel built on parallelRows writes disjoint output
// cells with a fixed per-cell order, so results do not depend on the
// partition at all.
func parallelRows(rows, threads int, fn func(r0, r1 int)) {
	if threads <= 1 || rows <= 1 {
		fn(0, rows)
		return
	}
	if threads > rows {
		threads = rows
	}
	base, rem := rows/threads, rows%threads
	var wg sync.WaitGroup
	r0 := 0
	for t := 0; t < threads; t++ {
		r1 := r0 + base
		if t < rem {
			r1++
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
		r0 = r1
	}
	wg.Wait()
}

// countRowRangeNNZ counts the non-zeros of rows [r0, r1) of a dense n-column
// output while the range is still cache-hot, so kernels can set the tracked
// nnz during their final write loop instead of re-scanning the whole output.
func countRowRangeNNZ(cv []float64, n, r0, r1 int) int64 {
	var cnt int64
	for i := r0 * n; i < r1*n; i++ {
		if cv[i] != 0 {
			cnt++
		}
	}
	return cnt
}

// multDenseDense is the dense GEMM kernel. The standard kernel uses an
// i-k-j loop order with cache blocking over k and j; the "blas" variant adds
// 4-way unrolling over j to approximate a vectorized library kernel.
func multDenseDense(a, b *MatrixBlock, threads int, blas bool) *MatrixBlock {
	m, k, n := a.rows, a.cols, b.cols
	out := NewDense(m, n)
	if !blas {
		// the standard kernel IS one accumulate pass into a zeroed output;
		// sharing gemmAcc keeps its per-cell accumulation order structurally
		// identical to MultiplyAcc (the bitwise-equality contract of the
		// blocked shuffle/broadcast-left executors)
		out.nnz = gemmAcc(out, a, b, threads)
		return out
	}
	av, bv, cv := a.dense, b.dense, out.dense
	var nnz atomic.Int64
	const blkK, blkJ = 64, 512
	parallelRows(m, threads, func(r0, r1 int) {
		for kk := 0; kk < k; kk += blkK {
			kmax := min(kk+blkK, k)
			for jj := 0; jj < n; jj += blkJ {
				jmax := min(jj+blkJ, n)
				for i := r0; i < r1; i++ {
					ci := cv[i*n : (i+1)*n]
					ai := av[i*k : (i+1)*k]
					for kp := kk; kp < kmax; kp++ {
						aval := ai[kp]
						if aval == 0 {
							continue
						}
						brow := bv[kp*n : (kp+1)*n]
						j := jj
						for ; j+4 <= jmax; j += 4 {
							ci[j] += float64(aval * brow[j])
							ci[j+1] += float64(aval * brow[j+1])
							ci[j+2] += float64(aval * brow[j+2])
							ci[j+3] += float64(aval * brow[j+3])
						}
						for ; j < jmax; j++ {
							ci[j] += float64(aval * brow[j])
						}
					}
				}
			}
		}
		nnz.Add(countRowRangeNNZ(cv, n, r0, r1))
	})
	out.nnz = nnz.Load()
	return out
}

// gemmAcc accumulates dense(a) %*% dense(b) into the dense accumulator with
// the kernel matching the problem size — the tiled engine (gemm.go) above
// TiledGEMMCrossoverFLOPs, the simple blocked loop below it — and returns the
// recounted non-zero total. It is the single dispatch behind the standard
// Multiply dense path and MultiplyAcc. Both kernels add each output cell's
// contributions one at a time in ascending-k order, so they are bitwise
// interchangeable for finite inputs and the stripe-accumulation contract
// holds across the crossover (a stripe small enough for the simple loop
// accumulates onto a tiled full product without any drift).
func gemmAcc(acc, a, b *MatrixBlock, threads int) int64 {
	if gemmUseTiled(a.rows, a.cols, b.cols) {
		return accDenseDenseTiled(acc, a, b, threads)
	}
	return accDenseDense(acc, a, b, threads)
}

// accDenseDense accumulates dense(a) %*% dense(b) into the dense accumulator
// with i-k-j loop order, cache blocking over k and j, and contributions
// arriving in ascending k order per output cell. It is the below-crossover
// kernel behind gemmAcc, and returns the recounted non-zero total of the
// accumulator.
func accDenseDense(acc, a, b *MatrixBlock, threads int) int64 {
	m, k, n := a.rows, a.cols, b.cols
	av, bv, cv := a.dense, b.dense, acc.dense
	var nnz atomic.Int64
	const blkK, blkJ = 64, 512
	parallelRows(m, threads, func(r0, r1 int) {
		for kk := 0; kk < k; kk += blkK {
			kmax := min(kk+blkK, k)
			for jj := 0; jj < n; jj += blkJ {
				jmax := min(jj+blkJ, n)
				for i := r0; i < r1; i++ {
					ci := cv[i*n : (i+1)*n]
					ai := av[i*k : (i+1)*k]
					for kp := kk; kp < kmax; kp++ {
						aval := ai[kp]
						if aval == 0 {
							continue
						}
						brow := bv[kp*n : (kp+1)*n]
						for j := jj; j < jmax; j++ {
							ci[j] += float64(aval * brow[j])
						}
					}
				}
			}
		}
		nnz.Add(countRowRangeNNZ(cv, n, r0, r1))
	})
	return nnz.Load()
}

// multSparseDense computes sparse(a) %*% dense(b).
func multSparseDense(a, b *MatrixBlock, threads int) *MatrixBlock {
	m, n := a.rows, b.cols
	out := NewDense(m, n)
	s := a.csr()
	bv, cv := b.dense, out.dense
	var nnz atomic.Int64
	parallelRows(m, threads, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ci := cv[i*n : (i+1)*n]
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				kp, aval := s.ColIdx[p], s.Values[p]
				brow := bv[kp*n : (kp+1)*n]
				for j := 0; j < n; j++ {
					ci[j] += float64(aval * brow[j])
				}
			}
		}
		nnz.Add(countRowRangeNNZ(cv, n, r0, r1))
	})
	out.nnz = nnz.Load()
	return out
}

// multDenseSparse computes dense(a) %*% sparse(b).
func multDenseSparse(a, b *MatrixBlock, threads int) *MatrixBlock {
	m, k, n := a.rows, a.cols, b.cols
	out := NewDense(m, n)
	s := b.csr()
	av, cv := a.dense, out.dense
	var nnz atomic.Int64
	parallelRows(m, threads, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ci := cv[i*n : (i+1)*n]
			ai := av[i*k : (i+1)*k]
			for kp := 0; kp < k; kp++ {
				aval := ai[kp]
				if aval == 0 {
					continue
				}
				for p := s.RowPtr[kp]; p < s.RowPtr[kp+1]; p++ {
					ci[s.ColIdx[p]] += float64(aval * s.Values[p])
				}
			}
		}
		nnz.Add(countRowRangeNNZ(cv, n, r0, r1))
	})
	out.nnz = nnz.Load()
	return out
}

// multSparseSparse computes sparse(a) %*% sparse(b) into a dense output
// (products of moderately sparse matrices are typically much denser).
func multSparseSparse(a, b *MatrixBlock, threads int) *MatrixBlock {
	m, n := a.rows, b.cols
	out := NewDense(m, n)
	sa, sb := a.csr(), b.csr()
	cv := out.dense
	var nnz atomic.Int64
	parallelRows(m, threads, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ci := cv[i*n : (i+1)*n]
			for p := sa.RowPtr[i]; p < sa.RowPtr[i+1]; p++ {
				kp, aval := sa.ColIdx[p], sa.Values[p]
				for q := sb.RowPtr[kp]; q < sb.RowPtr[kp+1]; q++ {
					ci[sb.ColIdx[q]] += float64(aval * sb.Values[q])
				}
			}
		}
		nnz.Add(countRowRangeNNZ(cv, n, r0, r1))
	})
	out.nnz = nnz.Load()
	out.ExamineAndApplySparsity()
	return out
}

// MultiplyAcc accumulates a %*% b into acc (acc += a %*% b). The kernel
// mirrors the dense GEMM loop order exactly, so for every output cell the
// contributions arrive in ascending k order: splitting the common dimension
// into stripes and accumulating them with MultiplyAcc in ascending stripe
// order is bitwise-identical to one Multiply over the full common dimension.
// This is the legality property the shuffle-style blocked matmult relies on.
// The accumulator is densified in place; sparse inputs are multiplied through
// densified copies so the accumulation order stays the same.
func MultiplyAcc(acc, a, b *MatrixBlock, threads int) error {
	if a.cols != b.rows {
		return fmt.Errorf("matrix: multiply-acc dimension mismatch %dx%d %%*%% %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	if acc.rows != a.rows || acc.cols != b.cols {
		return fmt.Errorf("matrix: multiply-acc accumulator is %dx%d, want %dx%d", acc.rows, acc.cols, a.rows, b.cols)
	}
	acc.ToDense()
	ad, bd := asDense(a), asDense(b)
	acc.nnz = gemmAcc(acc, ad, bd, resolveThreads(threads))
	return nil
}

// TSMM computes t(X) %*% X directly without materializing the transpose.
// This is the fused operator the HOP rewrite t(X)%*%X -> tsmm maps to, and
// the operation at the heart of the paper's lmDS workload.
func TSMM(x *MatrixBlock, threads int) *MatrixBlock {
	threads = resolveThreads(threads)
	n := x.cols
	out := NewDense(n, n)
	if x.IsSparse() {
		tsmmSparse(x, out, threads)
	} else {
		tsmmDense(x, out, threads)
	}
	// mirror the upper triangle into the lower triangle, counting non-zeros
	// in the same pass (each off-diagonal non-zero appears twice)
	cv := out.dense
	var nnz int64
	for i := 0; i < n; i++ {
		if cv[i*n+i] != 0 {
			nnz++
		}
		for j := i + 1; j < n; j++ {
			cv[j*n+i] = cv[i*n+j]
			if cv[i*n+j] != 0 {
				nnz += 2
			}
		}
	}
	out.nnz = nnz
	return out
}

func tsmmDense(x, out *MatrixBlock, threads int) {
	m, n := x.rows, x.cols
	xv := x.dense
	// Each worker accumulates a private upper-triangular result over a chunk
	// of rows (through the tiled engine for chunks above the crossover, the
	// simple triangular loop below it — identical per-cell ascending-row
	// accumulation order either way); partial results are summed in chunk
	// order at the end.
	numChunks := threads
	if numChunks > m {
		numChunks = max(1, m)
	}
	partials := make([]*gemmBuf, numChunks)
	chunk := (m + numChunks - 1) / numChunks
	var wg sync.WaitGroup
	for t := 0; t < numChunks; t++ {
		r0 := t * chunk
		if r0 >= m {
			break
		}
		r1 := min(r0+chunk, m)
		wg.Add(1)
		go func(t, r0, r1 int) {
			defer wg.Done()
			buf := gemmZeroBuf(n * n)
			if tsmmUseTiled(r1-r0, n) {
				tsmmTiledChunk(buf.f, xv, n, r0, r1)
			} else {
				tsmmSimpleChunk(buf.f, xv, n, r0, r1)
			}
			partials[t] = buf
		}(t, r0, r1)
	}
	wg.Wait()
	cv := out.dense
	for _, p := range partials {
		if p == nil {
			continue
		}
		for i := range cv {
			cv[i] += p.f[i]
		}
		gemmPutBuf(p)
	}
}

// tsmmSimpleChunk accumulates the upper triangle of t(Xc) %*% Xc for the row
// chunk [r0, r1) of x into buf: per row, every pairwise column product with
// j >= i, rows ascending — the per-cell order the tiled chunk kernel
// reproduces exactly.
func tsmmSimpleChunk(buf, xv []float64, n, r0, r1 int) {
	for r := r0; r < r1; r++ {
		row := xv[r*n : (r+1)*n]
		for i := 0; i < n; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			bi := buf[i*n:]
			for j := i; j < n; j++ {
				bi[j] += float64(vi * row[j])
			}
		}
	}
}

func tsmmSparse(x, out *MatrixBlock, threads int) {
	m, n := x.rows, x.cols
	s := x.csr()
	numChunks := threads
	if numChunks > m {
		numChunks = max(1, m)
	}
	partials := make([][]float64, numChunks)
	chunk := (m + numChunks - 1) / numChunks
	var wg sync.WaitGroup
	for t := 0; t < numChunks; t++ {
		r0 := t * chunk
		if r0 >= m {
			break
		}
		r1 := min(r0+chunk, m)
		wg.Add(1)
		go func(t, r0, r1 int) {
			defer wg.Done()
			buf := make([]float64, n*n)
			for r := r0; r < r1; r++ {
				lo, hi := s.RowPtr[r], s.RowPtr[r+1]
				for p := lo; p < hi; p++ {
					ci, vi := s.ColIdx[p], s.Values[p]
					bi := buf[ci*n:]
					for q := p; q < hi; q++ {
						bi[s.ColIdx[q]] += float64(vi * s.Values[q])
					}
				}
			}
			partials[t] = buf
		}(t, r0, r1)
	}
	wg.Wait()
	cv := out.dense
	for _, p := range partials {
		if p == nil {
			continue
		}
		for i := range cv {
			cv[i] += p[i]
		}
	}
}

// MatVec computes the matrix-vector product a %*% v where v is a column
// vector (cols == 1).
func MatVec(a, v *MatrixBlock, threads int) (*MatrixBlock, error) {
	if v.cols != 1 || a.cols != v.rows {
		return nil, fmt.Errorf("matrix: matvec dimension mismatch %dx%d %%*%% %dx%d", a.rows, a.cols, v.rows, v.cols)
	}
	return Multiply(a, v, threads)
}
