// AVX2 dense GEMM micro-kernel (see gemm.go). The kernel vectorizes ACROSS
// the gemmNR output columns of one register tile: each accumulator lane is one
// output cell, updated with VMULPD (round the product) followed by VADDPD
// (round the sum) — exactly the mul-then-add rounding sequence the scalar
// kernels compile to, with k ascending. FMA is deliberately NOT used: fusing
// would skip the intermediate rounding and break the bitwise
// accumulation-order contract shared with the simple blocked kernel.

#include "textflag.h"

// func gemmMicroAVX2Asm(ap, bp *float64, kc int, c *float64, ldb int)
//
// ap: packed A micro-panel, gemmMR (4) values per k step, k-major
// bp: packed B micro-panel, gemmNR (4) values per k step, k-major
// c:  top-left cell of the 4x4 output tile
// ldb: row stride of c in BYTES
TEXT ·gemmMicroAVX2Asm(SB), NOSPLIT, $0-40
	MOVQ ap+0(FP), AX
	MOVQ bp+8(FP), BX
	MOVQ kc+16(FP), CX
	MOVQ c+24(FP), DX
	MOVQ ldb+32(FP), SI
	LEAQ (DX)(SI*2), DI // row 2 base

	// load the 4x4 C tile: one ymm per row
	VMOVUPD (DX), Y0
	VMOVUPD (DX)(SI*1), Y1
	VMOVUPD (DI), Y2
	VMOVUPD (DI)(SI*1), Y3

	TESTQ CX, CX
	JEQ   store
	MOVQ  CX, R8
	SHRQ  $1, R8 // R8 = kc/2 (paired iterations)
	TESTQ R8, R8
	JEQ   tail

loop2:
	// k step 0
	VMOVUPD      (BX), Y4
	VBROADCASTSD (AX), Y5
	VBROADCASTSD 8(AX), Y6
	VBROADCASTSD 16(AX), Y7
	VBROADCASTSD 24(AX), Y8
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y0, Y0
	VMULPD       Y4, Y6, Y6
	VADDPD       Y6, Y1, Y1
	VMULPD       Y4, Y7, Y7
	VADDPD       Y7, Y2, Y2
	VMULPD       Y4, Y8, Y8
	VADDPD       Y8, Y3, Y3

	// k step 1
	VMOVUPD      32(BX), Y9
	VBROADCASTSD 32(AX), Y10
	VBROADCASTSD 40(AX), Y11
	VBROADCASTSD 48(AX), Y12
	VBROADCASTSD 56(AX), Y13
	VMULPD       Y9, Y10, Y10
	VADDPD       Y10, Y0, Y0
	VMULPD       Y9, Y11, Y11
	VADDPD       Y11, Y1, Y1
	VMULPD       Y9, Y12, Y12
	VADDPD       Y12, Y2, Y2
	VMULPD       Y9, Y13, Y13
	VADDPD       Y13, Y3, Y3

	ADDQ $64, AX
	ADDQ $64, BX
	DECQ R8
	JNE  loop2

	ANDQ $1, CX
	JEQ  store

tail:
	VMOVUPD      (BX), Y4
	VBROADCASTSD (AX), Y5
	VBROADCASTSD 8(AX), Y6
	VBROADCASTSD 16(AX), Y7
	VBROADCASTSD 24(AX), Y8
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y0, Y0
	VMULPD       Y4, Y6, Y6
	VADDPD       Y6, Y1, Y1
	VMULPD       Y4, Y7, Y7
	VADDPD       Y7, Y2, Y2
	VMULPD       Y4, Y8, Y8
	VADDPD       Y8, Y3, Y3

store:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, (DX)(SI*1)
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, (DI)(SI*1)
	VZEROUPPER
	RET

// func x86HasAVX2() bool
//
// AVX2 usable iff: max CPUID leaf >= 7, CPUID.1:ECX has OSXSAVE|AVX,
// XCR0 enables XMM+YMM state, and CPUID.7.0:EBX has AVX2.
TEXT ·x86HasAVX2(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JCS  none
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18000000, R8
	CMPL R8, $0x18000000
	JNE  none
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  none
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $0x20, BX
	JEQ   none
	MOVB  $1, ret+0(FP)
	RET

none:
	MOVB $0, ret+0(FP)
	RET
