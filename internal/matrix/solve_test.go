package matrix

import (
	"math"
	"testing"
)

func TestSolveSPD(t *testing.T) {
	// build an SPD system from normal equations
	x := RandUniform(50, 8, -1, 1, 1.0, 31)
	a := TSMM(x, 2)
	// add ridge term to guarantee positive definiteness
	for i := 0; i < a.Rows(); i++ {
		a.Set(i, i, a.Get(i, i)+0.1)
	}
	wTrue := RandUniform(8, 1, -1, 1, 1.0, 32)
	b, _ := Multiply(a, wTrue, 1)
	got, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(wTrue, 1e-8) {
		t.Errorf("solve result differs from true solution")
	}
}

func TestSolveGeneral(t *testing.T) {
	a := FromRows([][]float64{{0, 2, 1}, {3, 0, 2}, {1, 1, 0}})
	xTrue := FromRows([][]float64{{1}, {-2}, {3}})
	b, _ := Multiply(a, xTrue, 1)
	got, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(xTrue, 1e-10) {
		t.Errorf("solve = %v, want %v", got, xTrue)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	b := FromRows([][]float64{{1}, {2}})
	if _, err := Solve(a, b); err == nil {
		t.Error("expected singularity error")
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(NewDense(2, 3), NewDense(2, 1)); err == nil {
		t.Error("expected non-square error")
	}
	if _, err := Solve(NewDense(3, 3), NewDense(2, 1)); err == nil {
		t.Error("expected rhs mismatch error")
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon, _ := Multiply(l, Transpose(l), 1)
	if !recon.Equals(a, 1e-10) {
		t.Errorf("L*t(L) = %v, want %v", recon, a)
	}
	if _, err := Cholesky(FromRows([][]float64{{1, 5}, {5, 1}})); err == nil {
		t.Error("expected non-PD error")
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := Multiply(a, inv, 1)
	if !prod.Equals(Identity(2), 1e-10) {
		t.Errorf("A * inv(A) = %v", prod)
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	d, err := Det(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-(-2)) > 1e-12 {
		t.Errorf("det = %v, want -2", d)
	}
	sing, _ := Det(FromRows([][]float64{{1, 2}, {2, 4}}))
	if math.Abs(sing) > 1e-12 {
		t.Errorf("det of singular = %v, want 0", sing)
	}
}

func TestEigenSym(t *testing.T) {
	a := FromRows([][]float64{{2, 0, 0}, {0, 3, 4}, {0, 4, 9}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	// eigenvalues of the 2x2 block [3 4; 4 9] are 11 and 1, plus 2
	want := []float64{11, 2, 1}
	for i, w := range want {
		if math.Abs(vals.Get(i, 0)-w) > 1e-8 {
			t.Errorf("eigenvalue %d = %v, want %v", i, vals.Get(i, 0), w)
		}
	}
	// verify A v = lambda v for each eigenpair
	for i := 0; i < 3; i++ {
		v, _ := Slice(vecs, 0, 3, i, i+1)
		av, _ := Multiply(a, v, 1)
		lv := ScalarOp(v, vals.Get(i, 0), OpMul, false, 1)
		if !av.Equals(lv, 1e-8) {
			t.Errorf("eigenpair %d does not satisfy A v = lambda v", i)
		}
	}
}

func TestSolveNormalEquationsRegression(t *testing.T) {
	// end-to-end: recover regression weights from noise-free data
	n, m := 200, 10
	x := RandUniform(n, m, -1, 1, 1.0, 77)
	wTrue := RandUniform(m, 1, -2, 2, 1.0, 78)
	y, _ := Multiply(x, wTrue, 2)
	a := TSMM(x, 2)
	b, _ := Multiply(Transpose(x), y, 2)
	w, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equals(wTrue, 1e-6) {
		t.Error("normal equations did not recover the true weights")
	}
}
