package matrix

import (
	"math"
	"testing"
)

func TestSumMeanMinMax(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := Sum(m, 1); got != 21 {
		t.Errorf("Sum = %v, want 21", got)
	}
	if got := Mean(m, 1); got != 3.5 {
		t.Errorf("Mean = %v, want 3.5", got)
	}
	if got := Min(m, 1); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := Max(m, 1); got != 6 {
		t.Errorf("Max = %v, want 6", got)
	}
	if got := SumSq(m, 1); got != 91 {
		t.Errorf("SumSq = %v, want 91", got)
	}
}

func TestSumSparseMatchesDense(t *testing.T) {
	m := RandUniform(50, 20, -1, 1, 0.2, 42)
	d := m.Copy().ToDense()
	if math.Abs(Sum(m, 1)-Sum(d, 1)) > 1e-9 {
		t.Error("sparse and dense sums disagree")
	}
	if math.Abs(Min(m, 1)-Min(d, 1)) > 1e-12 || math.Abs(Max(m, 1)-Max(d, 1)) > 1e-12 {
		t.Error("sparse and dense min/max disagree")
	}
}

func TestMinMaxSparseWithImplicitZeros(t *testing.T) {
	// all stored values positive, but zeros exist -> min must be 0
	b := NewBuilder(3, 3)
	b.Add(0, 0, 5)
	b.Add(1, 1, 2)
	m := b.Build()
	if got := Min(m, 1); got != 0 {
		t.Errorf("Min = %v, want 0 (implicit zeros)", got)
	}
	if got := Max(m, 1); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
}

func TestRowColAggregates(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	cs := ColSums(m, 1)
	if cs.Rows() != 1 || cs.Cols() != 3 {
		t.Fatalf("ColSums dims %dx%d", cs.Rows(), cs.Cols())
	}
	if cs.Get(0, 0) != 5 || cs.Get(0, 1) != 7 || cs.Get(0, 2) != 9 {
		t.Errorf("ColSums = %v", cs)
	}
	rs := RowSums(m, 1)
	if rs.Get(0, 0) != 6 || rs.Get(1, 0) != 15 {
		t.Errorf("RowSums = %v", rs)
	}
	cm := ColMeans(m, 1)
	if cm.Get(0, 0) != 2.5 {
		t.Errorf("ColMeans = %v", cm)
	}
	rm := RowMeans(m, 1)
	if rm.Get(1, 0) != 5 {
		t.Errorf("RowMeans = %v", rm)
	}
	if got := ColMins(m).Get(0, 2); got != 3 {
		t.Errorf("ColMins = %v", got)
	}
	if got := ColMaxs(m).Get(0, 0); got != 4 {
		t.Errorf("ColMaxs = %v", got)
	}
	if got := RowMins(m).Get(1, 0); got != 4 {
		t.Errorf("RowMins = %v", got)
	}
	if got := RowMaxs(m).Get(0, 0); got != 3 {
		t.Errorf("RowMaxs = %v", got)
	}
}

func TestRowColAggregatesSparse(t *testing.T) {
	m := RandUniform(30, 10, 0, 1, 0.2, 17)
	d := m.Copy().ToDense()
	if !ColSums(m, 1).Equals(ColSums(d, 1), 1e-9) {
		t.Error("sparse ColSums disagrees with dense")
	}
	if !RowSums(m, 1).Equals(RowSums(d, 1), 1e-9) {
		t.Error("sparse RowSums disagrees with dense")
	}
}

func TestRowIndexMax(t *testing.T) {
	m := FromRows([][]float64{{1, 5, 2}, {7, 0, 3}})
	got := RowIndexMax(m)
	if got.Get(0, 0) != 2 || got.Get(1, 0) != 1 {
		t.Errorf("RowIndexMax = %v", got)
	}
}

func TestVarianceAndColVars(t *testing.T) {
	m := FromRows([][]float64{{1}, {2}, {3}, {4}})
	if got := Variance(m); math.Abs(got-5.0/3.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 5.0/3.0)
	}
	cv := ColVars(FromRows([][]float64{{1, 10}, {2, 20}, {3, 30}}))
	if math.Abs(cv.Get(0, 0)-1) > 1e-12 || math.Abs(cv.Get(0, 1)-100) > 1e-12 {
		t.Errorf("ColVars = %v", cv)
	}
	sd := ColSds(FromRows([][]float64{{1, 10}, {2, 20}, {3, 30}}))
	if math.Abs(sd.Get(0, 1)-10) > 1e-12 {
		t.Errorf("ColSds = %v", sd)
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := Trace(m); got != 5 {
		t.Errorf("Trace = %v, want 5", got)
	}
}

func TestQuantileMedian(t *testing.T) {
	v := FromRows([][]float64{{5}, {1}, {3}, {2}, {4}})
	if got := Median(v); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := Quantile(v, 0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := Quantile(v, 1); got != 5 {
		t.Errorf("Quantile(1) = %v, want 5", got)
	}
	if got := Quantile(v, 0.25); got != 2 {
		t.Errorf("Quantile(0.25) = %v, want 2", got)
	}
}

func TestCumSumCols(t *testing.T) {
	m := FromRows([][]float64{{1, 1}, {2, 1}, {3, 1}})
	got := CumSumCols(m)
	want := FromRows([][]float64{{1, 1}, {3, 2}, {6, 3}})
	if !got.Equals(want, 1e-12) {
		t.Errorf("CumSumCols = %v", got)
	}
}

func TestTable(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}, {2}, {1}})
	b := FromRows([][]float64{{1}, {1}, {2}, {2}})
	got := Table(a, b)
	want := FromRows([][]float64{{1, 1}, {1, 1}})
	if !got.Equals(want, 0) {
		t.Errorf("Table = %v, want %v", got, want)
	}
}
