package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genMatrix builds a deterministic pseudo-random matrix from a seed; used by
// the property-based tests to explore the operation space.
func genMatrix(rows, cols int, sparsity float64, seed int64) *MatrixBlock {
	return RandUniform(rows, cols, -10, 10, sparsity, seed)
}

func clampDim(v uint8) int { return int(v%16) + 1 }

func clampSparsity(v uint8) float64 {
	s := float64(v%100) / 100.0
	if s < 0.05 {
		s = 0.05
	}
	return s
}

func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(r, c uint8, seed int64, sp uint8) bool {
		m := genMatrix(clampDim(r), clampDim(c), clampSparsity(sp), seed)
		return Transpose(Transpose(m)).Equals(m, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTransposeProductRule(t *testing.T) {
	// t(A %*% B) == t(B) %*% t(A)
	f := func(r, k, c uint8, seed int64) bool {
		a := genMatrix(clampDim(r), clampDim(k), 1.0, seed)
		b := genMatrix(clampDim(k), clampDim(c), 1.0, seed+1)
		ab, err := Multiply(a, b, 2)
		if err != nil {
			return false
		}
		tb := Transpose(b)
		ta := Transpose(a)
		btat, err := Multiply(tb, ta, 2)
		if err != nil {
			return false
		}
		return Transpose(ab).Equals(btat, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMultiplyDistributesOverAdd(t *testing.T) {
	// A %*% (B + C) == A %*% B + A %*% C
	f := func(r, k, c uint8, seed int64) bool {
		a := genMatrix(clampDim(r), clampDim(k), 1.0, seed)
		b := genMatrix(clampDim(k), clampDim(c), 1.0, seed+1)
		cc := genMatrix(clampDim(k), clampDim(c), 1.0, seed+2)
		bc, err := CellwiseOp(b, cc, OpAdd, 1)
		if err != nil {
			return false
		}
		left, err := Multiply(a, bc, 2)
		if err != nil {
			return false
		}
		ab, _ := Multiply(a, b, 2)
		ac, _ := Multiply(a, cc, 2)
		right, err := CellwiseOp(ab, ac, OpAdd, 1)
		if err != nil {
			return false
		}
		return left.Equals(right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertySparseDenseEquivalence(t *testing.T) {
	// every kernel must produce the same result regardless of representation
	f := func(r, k uint8, seed int64, sp uint8) bool {
		rows, cols := clampDim(r)+2, clampDim(k)+2
		m := genMatrix(rows, cols, clampSparsity(sp), seed)
		dense := m.Copy().ToDense()
		sparse := m.Copy().ToSparse()
		if math.Abs(Sum(dense, 1)-Sum(sparse, 1)) > 1e-9 {
			return false
		}
		if !ColSums(dense, 1).Equals(ColSums(sparse, 1), 1e-9) {
			return false
		}
		if !Transpose(dense).Equals(Transpose(sparse), 1e-12) {
			return false
		}
		ts1 := TSMM(dense, 2)
		ts2 := TSMM(sparse, 2)
		return ts1.Equals(ts2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertySumLinearity(t *testing.T) {
	// sum(a*X) == a*sum(X)
	f := func(r, c uint8, seed int64, scale int8) bool {
		m := genMatrix(clampDim(r), clampDim(c), 1.0, seed)
		a := float64(scale)
		scaled := ScalarOp(m, a, OpMul, false, 1)
		return math.Abs(Sum(scaled, 1)-a*Sum(m, 1)) < 1e-8*(1+math.Abs(a*Sum(m, 1)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCBindSliceRoundTrip(t *testing.T) {
	// slicing a cbind back apart recovers the operands
	f := func(r, c1, c2 uint8, seed int64) bool {
		rows := clampDim(r)
		a := genMatrix(rows, clampDim(c1), 1.0, seed)
		b := genMatrix(rows, clampDim(c2), 1.0, seed+1)
		cb, err := CBind(a, b)
		if err != nil {
			return false
		}
		backA, err := Slice(cb, 0, rows, 0, a.Cols())
		if err != nil {
			return false
		}
		backB, err := Slice(cb, 0, rows, a.Cols(), a.Cols()+b.Cols())
		if err != nil {
			return false
		}
		return backA.Equals(a, 0) && backB.Equals(b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertySolveRecoversSolution(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		dim := int(n%8) + 2
		rng := rand.New(rand.NewSource(seed))
		// build a well-conditioned SPD matrix A = M^T M + I
		m := RandNormal(dim*2, dim, 1.0, rng.Int63())
		a := TSMM(m, 1)
		for i := 0; i < dim; i++ {
			a.Set(i, i, a.Get(i, i)+1)
		}
		xTrue := RandNormal(dim, 1, 1.0, rng.Int63())
		b, err := Multiply(a, xTrue, 1)
		if err != nil {
			return false
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return x.Equals(xTrue, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOrderIsPermutation(t *testing.T) {
	f := func(r uint8, seed int64) bool {
		rows := clampDim(r) + 1
		m := genMatrix(rows, 3, 1.0, seed)
		sorted, err := Order(m, 0, false, false)
		if err != nil {
			return false
		}
		// sums are invariant under row permutation
		if math.Abs(Sum(sorted, 1)-Sum(m, 1)) > 1e-9 {
			return false
		}
		// sorted column must be non-decreasing
		for i := 1; i < rows; i++ {
			if sorted.Get(i, 0) < sorted.Get(i-1, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyScalarCompareComplement(t *testing.T) {
	// (m < s) + (m >= s) == 1 everywhere
	f := func(r, c uint8, seed int64, sRaw int8) bool {
		m := genMatrix(clampDim(r), clampDim(c), 1.0, seed)
		s := float64(sRaw)
		lt := ScalarOp(m, s, OpLess, false, 1)
		ge := ScalarOp(m, s, OpGreaterEqual, false, 1)
		sum, err := CellwiseOp(lt, ge, OpAdd, 1)
		if err != nil {
			return false
		}
		return sum.Equals(Fill(m.Rows(), m.Cols(), 1), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDatagenSeedDeterminism(t *testing.T) {
	f := func(r, c uint8, seed int64, sp uint8) bool {
		a := RandUniform(clampDim(r), clampDim(c), 0, 1, clampSparsity(sp), seed)
		b := RandUniform(clampDim(r), clampDim(c), 0, 1, clampSparsity(sp), seed)
		return a.Equals(b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
