package matrix

import (
	"math"
	"math/rand"
)

// Identity returns the n x n identity matrix.
func Identity(n int) *MatrixBlock {
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		out.dense[i*n+i] = 1
	}
	out.nnz = int64(n)
	return out
}

// Fill returns a rows x cols matrix with every cell set to value.
func Fill(rows, cols int, value float64) *MatrixBlock {
	out := NewDense(rows, cols)
	if value != 0 {
		for i := range out.dense {
			out.dense[i] = value
		}
		out.nnz = int64(rows * cols)
	}
	return out
}

// RandUniform generates a rows x cols matrix with values drawn uniformly from
// [minV, maxV). Cells are zeroed with probability 1-sparsity. The generator
// is seeded deterministically so runs are reproducible and lineage traces can
// record the seed (Section 3.1: tracing of non-determinism).
func RandUniform(rows, cols int, minV, maxV, sparsity float64, seed int64) *MatrixBlock {
	rng := rand.New(rand.NewSource(seed))
	if sparsity < 1.0 {
		b := NewBuilder(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Float64() < sparsity {
					b.Add(r, c, minV+float64(rng.Float64()*(maxV-minV)))
				}
			}
		}
		out := b.Build()
		out.ExamineAndApplySparsity()
		return out
	}
	out := NewDense(rows, cols)
	for i := range out.dense {
		out.dense[i] = minV + float64(rng.Float64()*(maxV-minV))
	}
	out.RecomputeNNZ()
	return out
}

// RandNormal generates a rows x cols matrix with standard normal values,
// zeroed with probability 1-sparsity.
func RandNormal(rows, cols int, sparsity float64, seed int64) *MatrixBlock {
	rng := rand.New(rand.NewSource(seed))
	if sparsity < 1.0 {
		b := NewBuilder(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Float64() < sparsity {
					b.Add(r, c, rng.NormFloat64())
				}
			}
		}
		out := b.Build()
		out.ExamineAndApplySparsity()
		return out
	}
	out := NewDense(rows, cols)
	for i := range out.dense {
		out.dense[i] = rng.NormFloat64()
	}
	out.RecomputeNNZ()
	return out
}

// Seq returns the column vector (from, from+incr, ..., to) following DML seq
// semantics.
// SeqLength returns the number of values of seq(from, to, incr) — the single
// definition shared by the local kernel and the blocked generator, so the two
// can never disagree on boundary cases.
func SeqLength(from, to, incr float64) int {
	if incr == 0 {
		incr = 1
	}
	n := int(math.Floor((to-from)/incr)) + 1
	if n < 0 {
		n = 0
	}
	return n
}

func Seq(from, to, incr float64) *MatrixBlock {
	if incr == 0 {
		incr = 1
	}
	n := SeqLength(from, to, incr)
	out := NewDense(n, 1)
	v := from
	for i := 0; i < n; i++ {
		out.dense[i] = v
		v += incr
	}
	out.RecomputeNNZ()
	return out
}

// Sample returns n values sampled from 1..population (without replacement
// when replace is false) as a column vector.
func Sample(population, n int, replace bool, seed int64) *MatrixBlock {
	rng := rand.New(rand.NewSource(seed))
	out := NewDense(n, 1)
	if replace {
		for i := 0; i < n; i++ {
			out.dense[i] = float64(rng.Intn(population) + 1)
		}
	} else {
		perm := rng.Perm(population)
		if n > population {
			n = population
		}
		for i := 0; i < n; i++ {
			out.dense[i] = float64(perm[i] + 1)
		}
	}
	out.RecomputeNNZ()
	return out
}

// SyntheticRegression generates a synthetic regression dataset: an n x m
// feature matrix X with the given sparsity and a response y = X %*% w + noise
// where w is a dense weight vector. It is the data generator used by the
// benchmark harness for the Figure 5 workloads.
func SyntheticRegression(n, m int, sparsity float64, seed int64) (x, y *MatrixBlock) {
	x = RandUniform(n, m, 0, 1, sparsity, seed)
	w := RandUniform(m, 1, -1, 1, 1.0, seed+1)
	noise := RandNormal(n, 1, 1.0, seed+2)
	xw, err := Multiply(x, w, 0)
	if err != nil {
		panic(err)
	}
	y = NewDense(n, 1)
	for i := 0; i < n; i++ {
		y.dense[i] = xw.Get(i, 0) + float64(0.01*noise.Get(i, 0))
	}
	y.RecomputeNNZ()
	return x, y
}

// SyntheticClassification generates a synthetic binary classification
// dataset with labels in {0, 1} determined by a random linear separator.
func SyntheticClassification(n, m int, sparsity float64, seed int64) (x, y *MatrixBlock) {
	x = RandUniform(n, m, -1, 1, sparsity, seed)
	w := RandUniform(m, 1, -1, 1, 1.0, seed+1)
	xw, err := Multiply(x, w, 0)
	if err != nil {
		panic(err)
	}
	y = NewDense(n, 1)
	for i := 0; i < n; i++ {
		if xw.Get(i, 0) > 0 {
			y.dense[i] = 1
		}
	}
	y.RecomputeNNZ()
	return x, y
}
