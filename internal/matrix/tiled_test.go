package matrix

import (
	"sort"
	"sync"
	"testing"
)

// forceKernel pins the dense GEMM kernel selection for the duration of a
// test and restores the previous mode on cleanup.
func forceKernel(t *testing.T, k GEMMKernel) {
	t.Helper()
	prev := SetGEMMKernel(k)
	t.Cleanup(func() { SetGEMMKernel(prev) })
}

// tileDims exercises every micro-tile edge class: 1, tile-1, tile, tile+1,
// and sizes that leave ragged tails against the MR/NR (4) and MC/KC panel
// parameters.
var tileDims = []int{1, 3, 4, 5, 67, 129}

func bitwiseEqual(t *testing.T, want, got *MatrixBlock, what string) {
	t.Helper()
	if !want.Equals(got, 0) {
		t.Errorf("%s: tiled result is not bitwise-equal to the simple kernel", what)
	}
	if want.NNZ() != got.NNZ() {
		t.Errorf("%s: nnz = %d, want %d", what, got.NNZ(), want.NNZ())
	}
}

// TestTiledMultiplyBitwiseEqualsSimple is the core property of the tiled
// engine: for every ragged shape and thread count, the tiled kernel is
// bitwise-identical to the simple blocked loop (not just 1e-9), so swapping
// kernels at the crossover can never perturb a result.
func TestTiledMultiplyBitwiseEqualsSimple(t *testing.T) {
	for _, m := range tileDims {
		for _, k := range tileDims {
			for _, n := range tileDims {
				a := RandUniform(m, k, -1, 1, 1.0, int64(m*100+k*10+n))
				b := RandUniform(k, n, -1, 1, 1.0, int64(m+k*10+n*100))
				for _, threads := range []int{1, 4} {
					SetGEMMKernel(GEMMSimple)
					want, err := Multiply(a, b, threads)
					SetGEMMKernel(GEMMTiled)
					got, err2 := Multiply(a, b, threads)
					SetGEMMKernel(GEMMAuto)
					if err != nil || err2 != nil {
						t.Fatalf("%dx%dx%d: %v %v", m, k, n, err, err2)
					}
					bitwiseEqual(t, want, got, "multiply")
				}
			}
		}
	}
}

// TestTiledMultiplyLarge covers a shape comfortably above the auto crossover
// in one piece, so the production (auto) path is pinned against the simple
// loop at both thread counts.
func TestTiledMultiplyLarge(t *testing.T) {
	a := RandUniform(150, 140, -1, 1, 1.0, 71)
	b := RandUniform(140, 130, -1, 1, 1.0, 72)
	forceKernel(t, GEMMSimple)
	want, err := Multiply(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	SetGEMMKernel(GEMMAuto)
	for _, threads := range []int{1, 4} {
		got, err := Multiply(a, b, threads)
		if err != nil {
			t.Fatal(err)
		}
		bitwiseEqual(t, want, got, "auto multiply")
	}
}

// TestTiledMultiplyAccBitwiseEqualsSimple accumulates onto a non-zero
// accumulator with both kernels across ragged shapes and thread counts.
func TestTiledMultiplyAccBitwiseEqualsSimple(t *testing.T) {
	for _, m := range tileDims {
		for _, k := range tileDims {
			for _, n := range tileDims {
				a := RandUniform(m, k, -1, 1, 1.0, int64(m*7+k+n))
				b := RandUniform(k, n, -1, 1, 1.0, int64(m+k*7+n))
				seed := RandUniform(m, n, -1, 1, 1.0, int64(m+k+n*7))
				for _, threads := range []int{1, 4} {
					accS := seed.Copy()
					accT := seed.Copy()
					SetGEMMKernel(GEMMSimple)
					err := MultiplyAcc(accS, a, b, threads)
					SetGEMMKernel(GEMMTiled)
					err2 := MultiplyAcc(accT, a, b, threads)
					SetGEMMKernel(GEMMAuto)
					if err != nil || err2 != nil {
						t.Fatalf("%dx%dx%d: %v %v", m, k, n, err, err2)
					}
					bitwiseEqual(t, accS, accT, "multiply-acc")
				}
			}
		}
	}
}

// TestTiledMultiplyAccStripesBitwise re-verifies the stripe-accumulation
// legality property of the blocked shuffle/broadcast-left executors with the
// tiled kernel underneath — including the mixed case where the one-shot
// product selects the tiled engine while the short k-stripes fall back to the
// simple loop.
func TestTiledMultiplyAccStripesBitwise(t *testing.T) {
	const m, k, n, stripe = 37, 200, 23, 48
	a := RandUniform(m, k, -1, 1, 1.0, 61)
	b := RandUniform(k, n, -1, 1, 1.0, 62)
	for _, mode := range []GEMMKernel{GEMMTiled, GEMMAuto} {
		forceKernel(t, mode)
		want, err := Multiply(a, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		SetGEMMKernel(GEMMAuto)
		acc := NewDense(m, n)
		for k0 := 0; k0 < k; k0 += stripe {
			k1 := min(k0+stripe, k)
			as, err := Slice(a, 0, m, k0, k1)
			if err != nil {
				t.Fatal(err)
			}
			bs, err := Slice(b, k0, k1, 0, n)
			if err != nil {
				t.Fatal(err)
			}
			if err := MultiplyAcc(acc, as, bs, 2); err != nil {
				t.Fatal(err)
			}
		}
		bitwiseEqual(t, want, acc, "stripe accumulation")
	}
}

// TestTiledTSMMBitwiseEqualsSimple pins the tiled upper-triangle TSMM chunk
// kernel against the simple triangular loop across ragged shapes and thread
// counts, and re-checks symmetry of the mirrored output.
func TestTiledTSMMBitwiseEqualsSimple(t *testing.T) {
	for _, m := range []int{1, 3, 4, 5, 129, 300} {
		for _, n := range tileDims {
			x := RandUniform(m, n, -1, 1, 1.0, int64(m*31+n))
			for _, threads := range []int{1, 4} {
				SetGEMMKernel(GEMMSimple)
				want := TSMM(x, threads)
				SetGEMMKernel(GEMMTiled)
				got := TSMM(x, threads)
				SetGEMMKernel(GEMMAuto)
				bitwiseEqual(t, want, got, "tsmm")
				for i := 0; i < got.Rows(); i++ {
					for j := i + 1; j < got.Cols(); j++ {
						if got.Get(i, j) != got.Get(j, i) {
							t.Fatalf("tiled TSMM not symmetric at (%d,%d)", i, j)
						}
					}
				}
			}
		}
	}
}

// TestTiledScalarFallbackBitwise pins the portable scalar micro-kernel
// against the dispatcher's default path (the vector kernel where available):
// disabling the assembly kernel must not change a single bit, which is what
// makes results architecture-independent.
func TestTiledScalarFallbackBitwise(t *testing.T) {
	forceKernel(t, GEMMTiled)
	prev := gemmAsmAvailable
	t.Cleanup(func() { gemmAsmAvailable = prev })
	for _, dims := range [][3]int{{129, 67, 129}, {4, 256, 4}, {5, 300, 3}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := RandUniform(m, k, -1, 1, 1.0, int64(m+k+n))
		b := RandUniform(k, n, -1, 1, 1.0, int64(m*k+n))
		gemmAsmAvailable = prev
		want, err := Multiply(a, b, 2)
		gemmAsmAvailable = false
		got, err2 := Multiply(a, b, 2)
		gemmAsmAvailable = prev
		if err != nil || err2 != nil {
			t.Fatalf("%v %v", err, err2)
		}
		bitwiseEqual(t, want, got, "scalar-fallback multiply")
	}
}

// TestTiledMultiplyAccSparseDensify checks the direct sparse densification
// feeding the tiled kernel (zeros flow through the micro-kernel instead of
// being skipped) still matches the simple kernel bitwise.
func TestTiledMultiplyAccSparseDensify(t *testing.T) {
	a := RandUniform(70, 90, -1, 1, 0.1, 63).ToSparse()
	b := RandUniform(90, 40, -1, 1, 0.1, 64).ToSparse()
	accS, accT := NewDense(70, 40), NewDense(70, 40)
	forceKernel(t, GEMMSimple)
	if err := MultiplyAcc(accS, a, b, 2); err != nil {
		t.Fatal(err)
	}
	SetGEMMKernel(GEMMTiled)
	if err := MultiplyAcc(accT, a, b, 2); err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, accS, accT, "sparse-densified multiply-acc")
}

// TestAsDenseDirect checks the direct densification helper against the
// copy-then-convert path it replaced.
func TestAsDenseDirect(t *testing.T) {
	s := RandUniform(40, 30, -1, 1, 0.15, 65)
	if !s.IsSparse() {
		t.Fatal("expected sparse generated input")
	}
	got := asDense(s)
	want := s.Copy().ToDense()
	bitwiseEqual(t, want, got, "asDense")
	if !s.IsSparse() {
		t.Error("asDense mutated its input representation")
	}
	d := NewDense(3, 3)
	if asDense(d) != d {
		t.Error("asDense copied an already-dense block")
	}
}

// TestParallelRowsEvenDistribution verifies the balanced partition: exactly
// min(threads, rows) contiguous chunks whose sizes differ by at most one.
func TestParallelRowsEvenDistribution(t *testing.T) {
	for _, tc := range []struct{ rows, threads, wantChunks int }{
		{100, 8, 8},  // 100 = 8*12+4: ceil-chunking used to give 13,13,...,9
		{7, 4, 4},    // small row counts used to launch fewer workers
		{16, 16, 16}, // one row each
		{5, 8, 5},    // more threads than rows
		{97, 3, 3},
	} {
		var mu sync.Mutex
		type span struct{ r0, r1 int }
		var spans []span
		parallelRows(tc.rows, tc.threads, func(r0, r1 int) {
			mu.Lock()
			spans = append(spans, span{r0, r1})
			mu.Unlock()
		})
		if len(spans) != tc.wantChunks {
			t.Errorf("rows=%d threads=%d: %d chunks, want %d", tc.rows, tc.threads, len(spans), tc.wantChunks)
			continue
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].r0 < spans[j].r0 })
		next, minSz, maxSz := 0, tc.rows, 0
		for _, s := range spans {
			if s.r0 != next {
				t.Errorf("rows=%d threads=%d: gap or overlap at %d", tc.rows, tc.threads, s.r0)
			}
			sz := s.r1 - s.r0
			minSz, maxSz = min(minSz, sz), max(maxSz, sz)
			next = s.r1
		}
		if next != tc.rows {
			t.Errorf("rows=%d threads=%d: chunks cover %d rows", tc.rows, tc.threads, next)
		}
		if maxSz-minSz > 1 {
			t.Errorf("rows=%d threads=%d: chunk sizes range %d..%d, want spread <= 1", tc.rows, tc.threads, minSz, maxSz)
		}
	}
}

// TestMMChainBlockedBitwise pins the register-blocked 4-row mmchain dense leg
// against a row-at-a-time reference built from the same chunk structure, and
// checks thread-count reproducibility over a row count that exercises the
// 4-row remainder.
func TestMMChainBlockedBitwise(t *testing.T) {
	x := RandUniform(519, 67, -1, 1, 1.0, 91) // 519 = 4*129+3: ragged everywhere
	v := RandUniform(67, 1, -1, 1, 1.0, 92)
	w := RandUniform(519, 1, -1, 1, 1.0, 93)
	for _, weights := range []*MatrixBlock{nil, w} {
		t1, err := MMChain(x, v, weights, 1)
		if err != nil {
			t.Fatal(err)
		}
		t4, err := MMChain(x, v, weights, 4)
		if err != nil {
			t.Fatal(err)
		}
		bitwiseEqual(t, t1, t4, "mmchain threads")
		// reference: explicit two-step chain, tolerance comparison
		xv, err := Multiply(x, v, 1)
		if err != nil {
			t.Fatal(err)
		}
		if weights != nil {
			xv, err = CellwiseOp(weights, xv, OpMul, 1)
			if err != nil {
				t.Fatal(err)
			}
		}
		want, err := Multiply(Transpose(x), xv, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equals(t1, 1e-9) {
			t.Error("blocked mmchain disagrees with the explicit chain")
		}
	}
}
