// Lifecycle: an end-to-end data-science pipeline over raw heterogeneous data
// — the scenario the paper's introduction motivates. A CSV file with
// categorical, numeric and missing values is ingested as a frame, cleaned and
// feature-transformed (recode, dummy-coding, imputation, scaling), then a
// model is selected via cross validation and stepwise feature selection, and
// finally evaluated on held-out data. All steps run inside one declarative
// script, so the engine can optimize across lifecycle tasks.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	systemds "github.com/systemds/systemds-go"
)

func main() {
	dir, err := os.MkdirTemp("", "sysds-lifecycle")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rawPath := filepath.Join(dir, "sensors.csv")
	if err := writeRawDataset(rawPath, 2000); err != nil {
		log.Fatal(err)
	}

	ctx := systemds.NewContext(systemds.WithParallelism(4), systemds.WithReuse(true))

	// Ingest the raw file as a frame (schema inference handles the mixed
	// column types), encode features, clean outliers, and train/evaluate.
	script := fmt.Sprintf(`
F = read(%q, data_type="frame", header=TRUE)
[X, M] = transformencode(target=F, spec="dummycode=site;impute=temperature:mean;scale=temperature,vibration,rpm")

# the last encoded column is the target (energy consumption)
nfeat = ncol(X) - 1
y = X[, ncol(X)]
X = X[, 1:nfeat]

# robust cleaning of the numeric features
X = winsorize(X, 0.02, 0.98)

# model selection: 5-fold cross validation over the full feature set
[cvErr, meanErr] = crossValLM(X, y, 5, 0.0001)

# feature selection via stepwise regression (Example 1 of the paper)
[B, S] = steplm(X, y, 0.0001, 0.001)
nsel = sum(S)

# final holdout evaluation
[Xtr, ytr, Xte, yte] = splitTrainTest(X, y, 0.8)
Bfinal = lmDS(Xtr, ytr, 0.0001)
yhat = lmPredict(Xte, Bfinal)
testR2 = r2(yhat, yte)
testRMSE = rmse(yhat, yte)
`, rawPath)
	res, err := ctx.Execute(script, nil, "meanErr", "nsel", "testR2", "testRMSE")
	if err != nil {
		log.Fatalf("pipeline failed: %v", err)
	}

	meanErr, _ := res.Float("meanErr")
	nsel, _ := res.Float("nsel")
	testR2, _ := res.Float("testR2")
	testRMSE, _ := res.Float("testRMSE")
	fmt.Printf("cross-validation mean squared error: %.4f\n", meanErr)
	fmt.Printf("features selected by steplm:         %.0f\n", nsel)
	fmt.Printf("holdout R2:                          %.4f\n", testR2)
	fmt.Printf("holdout RMSE:                        %.4f\n", testRMSE)
	stats := ctx.CacheStats()
	fmt.Printf("reuse across lifecycle tasks: %d full + %d partial cache hits\n", stats.Hits, stats.PartialHits)
}

// writeRawDataset produces a messy raw CSV: a categorical site column,
// numeric sensor readings with missing values, and an energy target driven by
// the sensors.
func writeRawDataset(path string, rows int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(7))
	sites := []string{"graz", "vienna", "linz"}
	fmt.Fprintln(f, "site,temperature,vibration,rpm,energy")
	for i := 0; i < rows; i++ {
		site := sites[rng.Intn(len(sites))]
		temp := 15 + 10*rng.Float64()
		vib := rng.Float64()
		rpm := 900 + 200*rng.Float64()
		energy := 0.5*temp + 3*vib + 0.01*rpm + rng.NormFloat64()*0.1
		tempField := fmt.Sprintf("%.3f", temp)
		if rng.Float64() < 0.05 {
			tempField = "" // missing sensor reading
		}
		fmt.Fprintf(f, "%s,%s,%.3f,%.1f,%.4f\n", site, tempField, vib, rpm, energy)
	}
	return nil
}
