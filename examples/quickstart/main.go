// Quickstart: train a linear regression model with a declarative DML script,
// score it, and inspect training statistics — the minimal end-to-end use of
// the SystemDS-Go public API.
package main

import (
	"fmt"
	"log"

	systemds "github.com/systemds/systemds-go"
)

func main() {
	// 1. Create a session. Options control parallelism, reuse, backends.
	ctx := systemds.NewContext(systemds.WithParallelism(4))

	// 2. Prepare (or load) data. Here: synthetic regression data.
	X, y := systemds.SyntheticRegression(5000, 20, 1.0, 42)

	// 3. Express the analysis declaratively in DML. The lm builtin dispatches
	//    between a closed-form solver and conjugate gradient; lmPredict and
	//    the error metrics are DML-bodied builtins as well.
	script := `
B = lm(X, y, reg=0.001)
yhat = lmPredict(X, B)
trainMSE = mse(yhat, y)
trainR2 = r2(yhat, y)
print("training finished: R2 = " + trainR2)
`
	res, err := ctx.Execute(script, map[string]any{"X": X, "y": y}, "B", "trainMSE", "trainR2")
	if err != nil {
		log.Fatalf("script failed: %v", err)
	}

	// 4. Consume the results as Go values.
	B, _ := res.Matrix("B")
	mse, _ := res.Float("trainMSE")
	r2, _ := res.Float("trainR2")
	fmt.Printf("model: %d coefficients\n", B.Rows())
	fmt.Printf("training MSE: %.6f\n", mse)
	fmt.Printf("training R2:  %.4f\n", r2)
}
