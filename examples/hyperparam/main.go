// Hyperparam: the paper's evaluation workload (Section 4.1) — train k
// regression models with different regularization values over the same data —
// run once without and once with lineage-based reuse of intermediates
// (Section 3.1 / Figure 5(c)). The dominant computation t(X)%*%X and
// t(X)%*%y does not depend on the regularization value, so the reuse cache
// eliminates it for all but the first model.
package main

import (
	"fmt"
	"log"
	"time"

	systemds "github.com/systemds/systemds-go"
)

func main() {
	const (
		rows = 20000
		cols = 100
		k    = 30
	)
	X, y := systemds.SyntheticRegression(rows, cols, 1.0, 7)
	script := fmt.Sprintf(`
lambdas = seq(1, %d, 1) / 1000
[B, losses] = gridSearchLM(X, y, lambdas)
bestLoss = min(losses)
`, k)

	run := func(label string, opts ...systemds.Option) time.Duration {
		ctx := systemds.NewContext(opts...)
		start := time.Now()
		res, err := ctx.Execute(script, map[string]any{"X": X, "y": y}, "B", "bestLoss")
		if err != nil {
			log.Fatalf("%s failed: %v", label, err)
		}
		elapsed := time.Since(start)
		B, _ := res.Matrix("B")
		best, _ := res.Float("bestLoss")
		stats := ctx.CacheStats()
		fmt.Printf("%-16s %d models (%dx%d each), best training loss %.4f, %v\n",
			label, B.Cols(), B.Rows(), 1, best, elapsed.Round(time.Millisecond))
		if stats.Hits > 0 || stats.PartialHits > 0 {
			fmt.Printf("%-16s reuse cache: %d full hits, %d partial hits, %d puts\n",
				"", stats.Hits, stats.PartialHits, stats.Puts)
		}
		return elapsed
	}

	fmt.Printf("hyper-parameter optimization: %d models on a %dx%d dense matrix\n\n", k, rows, cols)
	base := run("SysDS", systemds.WithParallelism(8))
	withReuse := run("SysDS + reuse", systemds.WithParallelism(8), systemds.WithReuse(true))
	fmt.Printf("\nspeedup from reuse of intermediates: %.2fx\n", base.Seconds()/withReuse.Seconds())
}
