// Federated: train a linear regression model over data that never leaves its
// owning sites (Section 3.3 of the paper). Two federated workers are started
// in-process, each holding a horizontal partition of the features and labels;
// the coordinating script computes the normal equations with federated
// instructions (push-down tsmm and t(X)%*%y), so only d x d aggregates cross
// site boundaries, and solves for the model locally.
package main

import (
	"fmt"
	"log"

	systemds "github.com/systemds/systemds-go"
)

func main() {
	const (
		rowsPerSite = 4000
		cols        = 25
	)
	// Site-local data (in production each site runs `fedworker -data ...`).
	x1, y1 := systemds.SyntheticRegression(rowsPerSite, cols, 1.0, 101)
	x2, y2 := systemds.SyntheticRegression(rowsPerSite, cols, 1.0, 202)

	site1, err := systemds.StartFederatedWorker("127.0.0.1:0", map[string]*systemds.Matrix{"X": x1, "y": y1})
	if err != nil {
		log.Fatal(err)
	}
	defer site1.Shutdown()
	site2, err := systemds.StartFederatedWorker("127.0.0.1:0", map[string]*systemds.Matrix{"X": x2, "y": y2})
	if err != nil {
		log.Fatal(err)
	}
	defer site2.Shutdown()
	fmt.Printf("federated workers: %s, %s\n", site1.Addr, site2.Addr)

	totalRows := int64(2 * rowsPerSite)
	Xfed, err := systemds.Federated(totalRows, cols, []systemds.FederatedRange{
		{RowStart: 0, RowEnd: rowsPerSite, ColStart: 0, ColEnd: cols, Address: site1.Addr, VarName: "X"},
		{RowStart: rowsPerSite, RowEnd: totalRows, ColStart: 0, ColEnd: cols, Address: site2.Addr, VarName: "X"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer Xfed.Close()
	yFed, err := systemds.Federated(totalRows, 1, []systemds.FederatedRange{
		{RowStart: 0, RowEnd: rowsPerSite, ColStart: 0, ColEnd: 1, Address: site1.Addr, VarName: "y"},
		{RowStart: rowsPerSite, RowEnd: totalRows, ColStart: 0, ColEnd: 1, Address: site2.Addr, VarName: "y"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer yFed.Close()

	// The same lmDS normal-equations script runs unchanged on federated
	// inputs: tsmm and t(X)%*%y become federated instructions.
	ctx := systemds.NewContext(systemds.WithParallelism(4))
	script := `
A = t(X) %*% X + diag(matrix(0.001, ncol(X), 1))
b = t(X) %*% y
B = solve(A, b)
rowsSeen = nrow(X)
`
	res, err := ctx.Execute(script, map[string]any{"X": Xfed, "y": yFed}, "B", "rowsSeen")
	if err != nil {
		log.Fatalf("federated training failed: %v", err)
	}
	B, _ := res.Matrix("B")
	rowsSeen, _ := res.Float("rowsSeen")
	fmt.Printf("trained federated model with %d coefficients over %.0f rows\n", B.Rows(), rowsSeen)

	// Verify against centralized training (only possible here because the
	// example owns both partitions).
	ctx2 := systemds.NewContext()
	res2, err := ctx2.Execute(`
A = t(X) %*% X + diag(matrix(0.001, ncol(X), 1))
b = t(X) %*% y
B = solve(A, b)
`, map[string]any{"X": stack(x1, x2), "y": stack(y1, y2)}, "B")
	if err != nil {
		log.Fatal(err)
	}
	Bc, _ := res2.Matrix("B")
	maxDiff := 0.0
	for i := 0; i < B.Rows(); i++ {
		d := B.Get(i, 0) - Bc.Get(i, 0)
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |federated - centralized| coefficient difference: %.2e\n", maxDiff)
}

func stack(a, b *systemds.Matrix) *systemds.Matrix {
	rows := make([][]float64, 0, a.Rows()+b.Rows())
	for i := 0; i < a.Rows(); i++ {
		row := make([]float64, a.Cols())
		for j := range row {
			row[j] = a.Get(i, j)
		}
		rows = append(rows, row)
	}
	for i := 0; i < b.Rows(); i++ {
		row := make([]float64, b.Cols())
		for j := range row {
			row[j] = b.Get(i, j)
		}
		rows = append(rows, row)
	}
	return systemds.MatrixFromRows(rows)
}
