// Command fedworker runs a SystemDS-Go federated worker (Section 3.3 of the
// paper): a site-local process that owns data partitions and executes
// pushed-down federated instructions, returning only aggregates and model
// updates to the coordinating control program.
//
// Usage:
//
//	fedworker -addr :7077 -data X=features_site1.csv -data y=labels_site1.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/systemds/systemds-go/internal/fed"
	sdsio "github.com/systemds/systemds-go/internal/io"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7077", "address to listen on")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof profiling endpoints on this address (e.g. 127.0.0.1:6060; off when empty)")
		data      multiFlag
	)
	flag.Var(&data, "data", "preload a worker variable from CSV: name=file.csv (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "fedworker ", log.LstdFlags)
	worker := fed.NewWorker(logger)
	for _, d := range data {
		name, file, ok := strings.Cut(d, "=")
		if !ok {
			logger.Fatalf("invalid -data %q, expected name=file.csv", d)
		}
		m, err := sdsio.ReadMatrixCSV(file, sdsio.DefaultCSVOptions())
		if err != nil {
			logger.Fatalf("read %s: %v", file, err)
		}
		worker.PutLocal(name, m)
		logger.Printf("loaded %s (%dx%d) from %s", name, m.Rows(), m.Cols(), file)
	}
	if *debugAddr != "" {
		dbg := *debugAddr
		go func() {
			// DefaultServeMux carries the pprof handlers from the blank import
			err := http.ListenAndServe(dbg, nil)
			logger.Printf("debug listener %s stopped: %v", dbg, err)
		}()
		logger.Printf("pprof endpoints on http://%s/debug/pprof/", dbg)
	}
	bound, err := worker.Serve(*addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	fmt.Printf("federated worker listening on %s\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	worker.Shutdown()
}
