// Command sysdslint runs the sysdslint static-analysis suite — the custom
// analyzers that machine-check the runtime's determinism, layering, and
// concurrency contracts (see DESIGN.md "Enforced invariants") — over the
// given package patterns.
//
// Usage:
//
//	sysdslint [-only analyzer[,analyzer…]] [-list] packages…
//
// Findings print one per line as file:line:col: message (analyzer), and the
// process exits 1 when any finding survives suppression. Suppress a finding
// with a justified directive on or directly above the offending line:
//
//	//sysds:ok(<analyzer>): <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/systemds/systemds-go/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sysdslint [-only analyzer,…] [-list] packages…\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sysdslint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	diags, err := analysis.Lint("", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sysdslint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sysdslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
