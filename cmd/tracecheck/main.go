// Command tracecheck validates the observability output of a traced sysds
// run (the CI gate behind `make trace-check`): the -trace export must be
// well-formed Chrome trace-event JSON with resolvable parents and strict
// per-lane nesting, instruction spans must cover at least -min-coverage of
// the run span, and when a captured -stats report is given its heavy-hitter
// footer must reconcile with the trace within -tolerance.
//
// Usage:
//
//	sysds -f script.dml -trace run.json -stats > stats.txt
//	tracecheck -trace run.json -stats stats.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is one Chrome trace-event entry; only "X" complete events carry
// span payloads, "M" metadata events name the process and lanes.
type event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Tid  int     `json:"tid"`
	Args struct {
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
		Bytes  int64  `json:"bytes"`
	} `json:"args"`
}

func main() {
	var (
		tracePath   = flag.String("trace", "", "Chrome trace-event JSON file to validate (required)")
		statsPath   = flag.String("stats", "", "captured -stats output to reconcile against the trace (optional)")
		minCoverage = flag.Float64("min-coverage", 0.9, "minimum fraction of the run span that instruction spans must cover")
		tolerance   = flag.Float64("tolerance", 0.2, "relative tolerance for stats-vs-trace time reconciliation")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: -trace <file.json> is required")
		flag.Usage()
		os.Exit(2)
	}

	spans, err := loadTrace(*tracePath)
	if err != nil {
		fatalf("%v", err)
	}
	if err := checkParents(spans); err != nil {
		fatalf("%v", err)
	}
	if err := checkNesting(spans); err != nil {
		fatalf("%v", err)
	}
	runMs, instrMs, err := checkCoverage(spans, *minCoverage)
	if err != nil {
		fatalf("%v", err)
	}
	if *statsPath != "" {
		if err := reconcileStats(*statsPath, runMs, *tolerance); err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Printf("tracecheck: OK — %d spans, run %.3f ms, instruction coverage %.1f%%\n",
		len(spans), runMs, 100*instrMs/runMs)
}

// loadTrace parses the export and returns its complete ("X") events.
func loadTrace(path string) ([]event, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read trace: %w", err)
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("trace is not valid Chrome trace-event JSON: %w", err)
	}
	var spans []event
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("trace %s contains no complete (ph=X) events", path)
	}
	return spans, nil
}

// checkParents verifies every parent reference resolves to a span in the
// trace (0 marks a root).
func checkParents(spans []event) error {
	ids := map[uint64]bool{}
	for _, e := range spans {
		ids[e.Args.ID] = true
	}
	for _, e := range spans {
		if e.Args.Parent != 0 && !ids[e.Args.Parent] {
			return fmt.Errorf("span %q (id %d) references missing parent %d", e.Name, e.Args.ID, e.Args.Parent)
		}
	}
	return nil
}

// checkNesting replays each lane's events against a stack: Perfetto renders
// one lane per tid and requires the events within it to nest strictly.
func checkNesting(spans []event) error {
	byLane := map[int][]event{}
	for _, e := range spans {
		byLane[e.Tid] = append(byLane[e.Tid], e)
	}
	// epsilon absorbs the microsecond rounding of the export
	const eps = 1e-3
	for lane, evs := range byLane {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Ts != evs[j].Ts {
				return evs[i].Ts < evs[j].Ts
			}
			return evs[i].Dur > evs[j].Dur
		})
		var stack []event
		for _, e := range evs {
			for len(stack) > 0 && stack[len(stack)-1].Ts+stack[len(stack)-1].Dur <= e.Ts+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if e.Ts+e.Dur > top.Ts+top.Dur+eps {
					return fmt.Errorf("lane %d: span %q [%f, %f] overlaps %q [%f, %f] without nesting",
						lane, e.Name, e.Ts, e.Ts+e.Dur, top.Name, top.Ts, top.Ts+top.Dur)
				}
			}
			stack = append(stack, e)
		}
	}
	return nil
}

// checkCoverage locates the run span and requires the summed instruction
// span time to cover at least minCoverage of it.
func checkCoverage(spans []event, minCoverage float64) (runMs, instrMs float64, err error) {
	runs := 0
	for _, e := range spans {
		switch e.Cat {
		case "run":
			runs++
			runMs = e.Dur / 1e3
		case "instr":
			instrMs += e.Dur / 1e3
		}
	}
	if runs != 1 {
		return 0, 0, fmt.Errorf("trace has %d run spans, want exactly 1", runs)
	}
	if runMs <= 0 {
		return 0, 0, fmt.Errorf("run span has non-positive duration %f ms", runMs)
	}
	if coverage := instrMs / runMs; coverage < minCoverage {
		return 0, 0, fmt.Errorf("instruction spans cover %.1f%% of the run, want >= %.1f%%",
			100*coverage, 100*minCoverage)
	}
	return runMs, instrMs, nil
}

// reconcileStats parses the heavy-hitter footer of a captured -stats report
// and checks it against the trace: the reported run wall time must match the
// trace's run span, and the total instruction time must account for the run
// within the tolerance.
func reconcileStats(path string, traceRunMs, tolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read stats: %w", err)
	}
	statsRun, err := footerValue(string(raw), "run wall time:")
	if err != nil {
		return err
	}
	statsInstr, err := footerValue(string(raw), "total instruction time:")
	if err != nil {
		return err
	}
	if rel := relDiff(statsRun, traceRunMs); rel > tolerance {
		return fmt.Errorf("stats run wall time %.3f ms differs from trace run span %.3f ms by %.1f%% (tolerance %.0f%%)",
			statsRun, traceRunMs, 100*rel, 100*tolerance)
	}
	if rel := relDiff(statsInstr, statsRun); rel > tolerance {
		return fmt.Errorf("total instruction time %.3f ms does not reconcile with run wall time %.3f ms: off by %.1f%% (tolerance %.0f%%)",
			statsInstr, statsRun, 100*rel, 100*tolerance)
	}
	return nil
}

// footerValue extracts the leading float after a labeled stats line, e.g.
// "run wall time: 12.345 ms" -> 12.345.
func footerValue(report, label string) (float64, error) {
	for _, line := range strings.Split(report, "\n") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), label)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return 0, fmt.Errorf("stats line %q carries no value", line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return 0, fmt.Errorf("stats line %q: %w", line, err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("stats report has no %q line (was the run traced?)", label)
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
