// Command sysdsbench regenerates the tables and figures of the paper's
// evaluation (Figure 5(a)-(d)) and the ablation experiments listed in
// DESIGN.md. Results are printed as aligned text tables (the series the paper
// plots); EXPERIMENTS.md records representative runs.
//
// Usage:
//
//	sysdsbench -figure 5a            # one figure at the default (small) scale
//	sysdsbench -figure all -scale tiny
//	sysdsbench -figure 5c -scale paper
//	sysdsbench -figure ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/systemds/systemds-go/internal/experiments"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "which experiment to run: 5a, 5b, 5c, 5d, steplm, dist, distchain, fusion, mmplan, fed, paramserv, ablations, all")
		scaleArg = flag.String("scale", "small", "data scale: tiny, small, paper")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleArg {
	case "tiny":
		scale = experiments.TinyScale()
	case "small":
		scale = experiments.SmallScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "sysdsbench: unknown scale %q\n", *scaleArg)
		os.Exit(2)
	}
	dir, err := os.MkdirTemp("", "sysdsbench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("SystemDS-Go benchmark harness — scale %s (%dx%d)\n\n", scale.Name, scale.Rows, scale.Cols)

	run := func(name string, fn func() (*experiments.Figure, error)) {
		if *figure != "all" && *figure != "ablations" && *figure != name {
			return
		}
		if *figure == "ablations" && (name == "5a" || name == "5b" || name == "5c" || name == "5d") {
			return
		}
		fig, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sysdsbench: experiment %s failed: %v\n", name, err)
			return
		}
		fmt.Println(fig.Render())
	}

	run("5a", func() (*experiments.Figure, error) { return experiments.Figure5a(scale, dir) })
	run("5b", func() (*experiments.Figure, error) { return experiments.Figure5b(scale, dir) })
	run("5c", func() (*experiments.Figure, error) { return experiments.Figure5c(scale, dir) })
	run("5d", func() (*experiments.Figure, error) { return experiments.Figure5d(scale, dir) })
	run("steplm", func() (*experiments.Figure, error) {
		return experiments.AblationSteplmPartialReuse(scale.Rows/2, min(scale.Cols, 60))
	})
	run("dist", func() (*experiments.Figure, error) {
		return experiments.AblationDistVsLocal(scale.RowsSweep, scale.Cols, 1024)
	})
	run("distchain", func() (*experiments.Figure, error) {
		return experiments.AblationBlockedChain(scale.RowsSweep, scale.Cols, 1024)
	})
	run("fed", func() (*experiments.Figure, error) {
		return experiments.AblationFederatedTSMM(scale.Rows, scale.Cols)
	})
	run("fusion", func() (*experiments.Figure, error) {
		return experiments.AblationFusedPipelines(scale.Rows, scale.Cols)
	})
	run("mmplan", func() (*experiments.Figure, error) {
		return experiments.AblationMatMultStrategies(scale.Rows, 64)
	})
	run("paramserv", func() (*experiments.Figure, error) {
		return experiments.AblationParamServ(scale.Rows, min(scale.Cols, 50))
	})
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sysdsbench: %v\n", err)
	os.Exit(1)
}
