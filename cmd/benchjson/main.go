// Command benchjson converts `go test -bench` output read from stdin into a
// JSON benchmark report, echoing the input through so the human-readable
// results stay visible. It backs the `make bench` target, which records the
// perf trajectory of the repository (BENCH_pr3.json, ...).
//
// Usage:
//
//	go test -bench Fused -benchmem -run '^$' . | benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// DataBytesPerOp is the custom "databytes/op" metric reported by the
	// compressed-kernel benchmarks: the bytes of matrix representation the
	// kernel streams per operation.
	DataBytesPerOp float64 `json:"data_bytes_per_op,omitempty"`
	// Gflops is the custom "gflops" metric reported by the dense GEMM/TSMM
	// kernel benchmarks: sustained arithmetic throughput in billions of
	// floating-point operations per second.
	Gflops float64 `json:"gflops,omitempty"`
}

// Report is the JSON document written to -out.
type Report struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

func main() {
	out := flag.String("out", "", "path of the JSON report (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	report := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				report.Context[k] = strings.TrimSpace(v)
			}
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				report.Results = append(report.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(report.Results), *out)
}

// parseBenchLine parses lines of the form
//
//	BenchmarkName-8   12   93214 ns/op   1024 B/op   3 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the GOMAXPROCS suffix
	}
	r := Result{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		if fields[i+1] == "databytes/op" {
			if f, err := strconv.ParseFloat(fields[i], 64); err == nil {
				r.DataBytesPerOp = f
			}
			continue
		}
		if fields[i+1] == "gflops" {
			if f, err := strconv.ParseFloat(fields[i], 64); err == nil {
				r.Gflops = f
			}
			continue
		}
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
