// Command sysds executes a DML script from the command line (the equivalent
// of SystemDS' command-line invocation in Figure 3). Script inputs can be
// bound to CSV files or scalar values with -input flags, and outputs are
// printed or written to CSV files.
//
// Usage:
//
//	sysds -f script.dml \
//	      -input X=features.csv -input y=labels.csv -input reg=0.001 \
//	      -output B=model.csv -print err \
//	      -reuse -parallelism 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	systemds "github.com/systemds/systemds-go"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var (
		scriptPath  = flag.String("f", "", "path to the DML script (required)")
		inputs      multiFlag
		outputs     multiFlag
		prints      multiFlag
		reuse       = flag.Bool("reuse", false, "enable lineage-based reuse of intermediates")
		persistDir  = flag.String("persist-lineage", "", "directory for cross-run lineage reuse and cost-model calibration (implies -reuse)")
		lineageOff  = flag.Bool("no-lineage", false, "disable lineage tracing")
		parallelism = flag.Int("parallelism", 0, "number of threads (0 = all cores)")
		interOp     = flag.Int("inter-op", 1, "inter-operator scheduler workers (<=1 = sequential execution)")
		useBLAS     = flag.Bool("blas", false, "use the BLAS-like dense multiply kernel")
		distributed = flag.Bool("distributed", false, "enable the blocked distributed backend for large operations")
		compression = flag.Bool("compress", false, "enable compressed linear algebra for loop-reused operands")
		memBudget   = flag.Int64("mem-budget", 0, "per-operator memory budget in bytes for CP-vs-distributed selection (0 = default)")
		explainErr  = flag.Bool("stats", false, "print reuse-cache statistics after execution")
	)
	flag.Var(&inputs, "input", "bind a script input: name=file.csv or name=scalar (repeatable)")
	flag.Var(&outputs, "output", "write a script output to CSV: name=file.csv (repeatable)")
	flag.Var(&prints, "print", "print a script output variable (repeatable)")
	flag.Parse()

	if *scriptPath == "" {
		fmt.Fprintln(os.Stderr, "sysds: -f <script.dml> is required")
		flag.Usage()
		os.Exit(2)
	}
	opts := []systemds.Option{
		systemds.WithParallelism(*parallelism),
		systemds.WithInterOpParallelism(*interOp),
		systemds.WithReuse(*reuse),
		systemds.WithBLAS(*useBLAS),
		systemds.WithDistributedBackend(*distributed),
		systemds.WithCompression(*compression),
	}
	if *persistDir != "" {
		opts = append(opts, systemds.WithPersistentLineage(*persistDir))
	}
	if *memBudget > 0 {
		opts = append(opts, systemds.WithOperatorMemBudget(*memBudget))
	}
	if *lineageOff {
		opts = append(opts, systemds.WithLineage(false))
	}
	ctx := systemds.NewContext(opts...)

	boundInputs := map[string]any{}
	for _, in := range inputs {
		name, value, ok := strings.Cut(in, "=")
		if !ok {
			fatalf("invalid -input %q, expected name=value", in)
		}
		boundInputs[name] = parseInputValue(value)
	}

	outNames := map[string]string{}
	var requested []string
	for _, out := range outputs {
		name, file, ok := strings.Cut(out, "=")
		if !ok {
			fatalf("invalid -output %q, expected name=file.csv", out)
		}
		outNames[name] = file
		requested = append(requested, name)
	}
	requested = append(requested, prints...)

	results, err := ctx.ExecuteFile(*scriptPath, boundInputs, requested...)
	if err != nil {
		fatalf("execution failed: %v", err)
	}
	for name, file := range outNames {
		m, err := results.Matrix(name)
		if err != nil {
			fatalf("output %s: %v", name, err)
		}
		if err := systemds.WriteMatrixCSV(file, m); err != nil {
			fatalf("write %s: %v", file, err)
		}
		fmt.Printf("wrote %s (%dx%d) to %s\n", name, m.Rows(), m.Cols(), file)
	}
	for _, name := range prints {
		fmt.Printf("%s = %v\n", name, results[name])
	}
	if *explainErr {
		stats := ctx.CacheStats()
		fmt.Printf("reuse cache: hits=%d misses=%d partial=%d puts=%d evictions=%d\n",
			stats.Hits, stats.Misses, stats.PartialHits, stats.Puts, stats.Evictions)
		if *persistDir != "" {
			ls := ctx.LineageStoreStats()
			fmt.Printf("lineage store: files=%d bytes=%d hits=%d misses=%d puts=%d evictions=%d corrupt=%d\n",
				ls.Files, ls.Bytes, ls.Hits, ls.Misses, ls.Puts, ls.Evictions, ls.CorruptDropped)
		}
	}
}

// parseInputValue binds CSV files as matrices and everything else as scalars.
func parseInputValue(value string) any {
	if strings.HasSuffix(value, ".csv") || strings.HasSuffix(value, ".bin") {
		m, err := systemds.ReadMatrixCSV(value)
		if err != nil {
			fatalf("read input %s: %v", value, err)
		}
		return m
	}
	if v, err := strconv.ParseFloat(value, 64); err == nil {
		return v
	}
	if value == "TRUE" || value == "FALSE" {
		return value == "TRUE"
	}
	return value
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sysds: "+format+"\n", args...)
	os.Exit(1)
}
