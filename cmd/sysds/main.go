// Command sysds executes a DML script from the command line (the equivalent
// of SystemDS' command-line invocation in Figure 3). Script inputs can be
// bound to CSV files or scalar values with -input flags, and outputs are
// printed or written to CSV files.
//
// Usage:
//
//	sysds -f script.dml \
//	      -input X=features.csv -input y=labels.csv -input reg=0.001 \
//	      -output B=model.csv -print err \
//	      -reuse -parallelism 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	systemds "github.com/systemds/systemds-go"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var (
		scriptPath  = flag.String("f", "", "path to the DML script (required)")
		inputs      multiFlag
		outputs     multiFlag
		prints      multiFlag
		reuse       = flag.Bool("reuse", false, "enable lineage-based reuse of intermediates")
		persistDir  = flag.String("persist-lineage", "", "directory for cross-run lineage reuse and cost-model calibration (implies -reuse)")
		lineageOff  = flag.Bool("no-lineage", false, "disable lineage tracing")
		parallelism = flag.Int("parallelism", 0, "number of threads (0 = all cores)")
		interOp     = flag.Int("inter-op", 1, "inter-operator scheduler workers (<=1 = sequential execution)")
		useBLAS     = flag.Bool("blas", false, "use the BLAS-like dense multiply kernel")
		distributed = flag.Bool("distributed", false, "enable the blocked distributed backend for large operations")
		compression = flag.Bool("compress", false, "enable compressed linear algebra for loop-reused operands")
		memBudget   = flag.Int64("mem-budget", 0, "per-operator memory budget in bytes for CP-vs-distributed selection (0 = default)")
		printStats  = flag.Bool("stats", false, "print execution statistics and the per-opcode heavy-hitter table after execution")
		tracePath   = flag.String("trace", "", "write the run as Chrome trace-event JSON to this file (view in Perfetto)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Var(&inputs, "input", "bind a script input: name=file.csv or name=scalar (repeatable)")
	flag.Var(&outputs, "output", "write a script output to CSV: name=file.csv (repeatable)")
	flag.Var(&prints, "print", "print a script output variable (repeatable)")
	flag.Parse()

	if *scriptPath == "" {
		fmt.Fprintln(os.Stderr, "sysds: -f <script.dml> is required")
		flag.Usage()
		os.Exit(2)
	}
	opts := []systemds.Option{
		systemds.WithParallelism(*parallelism),
		systemds.WithInterOpParallelism(*interOp),
		systemds.WithReuse(*reuse),
		systemds.WithBLAS(*useBLAS),
		systemds.WithDistributedBackend(*distributed),
		systemds.WithCompression(*compression),
		// the heavy-hitter table and the trace export both come from the span
		// tracer, so either flag turns it on
		systemds.WithTracing(*printStats || *tracePath != ""),
	}
	if *persistDir != "" {
		opts = append(opts, systemds.WithPersistentLineage(*persistDir))
	}
	if *memBudget > 0 {
		opts = append(opts, systemds.WithOperatorMemBudget(*memBudget))
	}
	if *lineageOff {
		opts = append(opts, systemds.WithLineage(false))
	}
	ctx := systemds.NewContext(opts...)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("create cpu profile %s: %v", *cpuProfile, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("start cpu profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("create heap profile %s: %v", *memProfile, err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("write heap profile: %v", err)
			}
		}()
	}

	boundInputs := map[string]any{}
	for _, in := range inputs {
		name, value, ok := strings.Cut(in, "=")
		if !ok {
			fatalf("invalid -input %q, expected name=value", in)
		}
		boundInputs[name] = parseInputValue(value)
	}

	outNames := map[string]string{}
	var requested []string
	for _, out := range outputs {
		name, file, ok := strings.Cut(out, "=")
		if !ok {
			fatalf("invalid -output %q, expected name=file.csv", out)
		}
		outNames[name] = file
		requested = append(requested, name)
	}
	requested = append(requested, prints...)

	results, err := ctx.ExecuteFile(*scriptPath, boundInputs, requested...)
	if err != nil {
		fatalf("execution failed: %v", err)
	}
	for name, file := range outNames {
		m, err := results.Matrix(name)
		if err != nil {
			fatalf("output %s: %v", name, err)
		}
		if err := systemds.WriteMatrixCSV(file, m); err != nil {
			fatalf("write %s: %v", file, err)
		}
		fmt.Printf("wrote %s (%dx%d) to %s\n", name, m.Rows(), m.Cols(), file)
	}
	for _, name := range prints {
		fmt.Printf("%s = %v\n", name, results[name])
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("create trace %s: %v", *tracePath, err)
		}
		if err := ctx.WriteTrace(f); err != nil {
			fatalf("write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close trace %s: %v", *tracePath, err)
		}
	}
	if *printStats {
		printExecStats(ctx, *persistDir != "")
	}
}

// printExecStats renders the full execution-statistics picture of the run:
// reuse cache, buffer pool, distributed backend, fused operators, compression
// and persistent lineage store counters, followed by the per-opcode
// heavy-hitter table from the span tracer.
func printExecStats(ctx *systemds.Context, persist bool) {
	cs := ctx.CacheStats()
	fmt.Printf("reuse cache: hits=%d misses=%d partial=%d puts=%d evictions=%d\n",
		cs.Hits, cs.Misses, cs.PartialHits, cs.Puts, cs.Evictions)
	stats := ctx.LastRunStats()
	if stats != nil {
		fmt.Printf("buffer pool: evictions=%d restores=%d spilt=%dB blocksRestored=%d blocksSkipped=%d\n",
			stats.PoolStats.Evictions, stats.PoolStats.Restores, stats.PoolStats.BytesSpilt,
			stats.PoolStats.BlocksRestored, stats.PoolStats.BlocksSkipped)
		fmt.Printf("distributed: partitions=%d collects=%d blockedOps=%d\n",
			stats.DistStats.Partitions, stats.DistStats.Collects, stats.DistStats.BlockedOps)
		fmt.Printf("fused ops: mmchain=%d cellwiseAgg=%d\n",
			stats.FusedStats.MMChainOps, stats.FusedStats.FusedAggOps)
		co := stats.CompressStats
		fmt.Printf("compression: compressed=%d rejected=%d compressedOps=%d decompressions=%d bytes=%d->%d\n",
			co.Compressions, co.Rejected, co.CompressedOps, co.Decompressions,
			co.BytesUncompressed, co.BytesCompressed)
		if len(co.DecompressionsByOp) > 0 {
			ops := make([]string, 0, len(co.DecompressionsByOp))
			for op := range co.DecompressionsByOp {
				ops = append(ops, op)
			}
			sort.Strings(ops)
			parts := make([]string, len(ops))
			for i, op := range ops {
				parts[i] = fmt.Sprintf("%s=%d", op, co.DecompressionsByOp[op])
			}
			fmt.Printf("decompressions by op: %s\n", strings.Join(parts, " "))
		}
		fmt.Printf("plan records: %d (dropped=%d)\n", len(stats.PlanStats), stats.PlanRecordsDropped)
	}
	if persist {
		ls := ctx.LineageStoreStats()
		fmt.Printf("lineage store: files=%d bytes=%d hits=%d misses=%d puts=%d evictions=%d corrupt=%d\n",
			ls.Files, ls.Bytes, ls.Hits, ls.Misses, ls.Puts, ls.Evictions, ls.CorruptDropped)
	}
	if recs := ctx.Trace(); len(recs) > 0 {
		fmt.Print(systemds.FormatHeavyHitters(recs, 15))
		if stats != nil && stats.TraceDropped > 0 {
			fmt.Printf("trace spans dropped after record cap: %d\n", stats.TraceDropped)
		}
	}
}

// parseInputValue binds CSV files as matrices and everything else as scalars.
func parseInputValue(value string) any {
	if strings.HasSuffix(value, ".csv") || strings.HasSuffix(value, ".bin") {
		m, err := systemds.ReadMatrixCSV(value)
		if err != nil {
			fatalf("read input %s: %v", value, err)
		}
		return m
	}
	if v, err := strconv.ParseFloat(value, 64); err == nil {
		return v
	}
	if value == "TRUE" || value == "FALSE" {
		return value == "TRUE"
	}
	return value
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sysds: "+format+"\n", args...)
	os.Exit(1)
}
