// Benchmarks regenerating the paper's evaluation (Figure 5(a)-(d)) and the
// ablation experiments of DESIGN.md, one benchmark family per figure. The
// testing.B benchmarks run at a reduced scale so `go test -bench=.` finishes
// in minutes; cmd/sysdsbench runs the same harness at the small or paper
// scale and prints the full series.
package systemds_test

import (
	"fmt"
	"testing"

	systemds "github.com/systemds/systemds-go"
	"github.com/systemds/systemds-go/internal/baselines"
	"github.com/systemds/systemds-go/internal/experiments"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/paramserv"
)

// benchScale is the data size used by the benchmarks.
var benchScale = experiments.TinyScale()

// --- Figure 5(a): Baselines Dense -----------------------------------------

func benchmarkFig5aSystem(b *testing.B, run func(k int) error) {
	for _, k := range benchScale.Ks {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := run(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func denseWorkloadData(b *testing.B) (x, y *matrix.MatrixBlock) {
	b.Helper()
	return matrix.SyntheticRegression(benchScale.Rows, benchScale.Cols, 1.0, 101)
}

func sparseWorkloadData(b *testing.B) (x, y *matrix.MatrixBlock) {
	b.Helper()
	return matrix.SyntheticRegression(benchScale.Rows, benchScale.Cols, 0.1, 102)
}

func lambdaValues(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = float64(i+1) / 1000
	}
	return out
}

func BenchmarkFig5aBaselinesDenseTF(b *testing.B) {
	x, y := denseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.Naive, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5aBaselinesDenseTFG(b *testing.B) {
	x, y := denseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.GraphCSE, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5aBaselinesDenseJulia(b *testing.B) {
	x, y := denseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.Eager, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5aBaselinesDenseSysDS(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 1.0, 103)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, false, false)
		return err
	})
}

func BenchmarkFig5aBaselinesDenseSysDSBLAS(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 1.0, 104)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, false, true)
		return err
	})
}

// figureFiles materializes the CSV inputs of the end-to-end workload.
func figureFiles(b *testing.B, sparsity float64, seed int64) (dir, xPath, yPath string) {
	b.Helper()
	dir = b.TempDir()
	var err error
	xPath, yPath, err = experiments.PrepareWorkloadFiles(dir, benchScale.Rows, benchScale.Cols, sparsity, seed)
	if err != nil {
		b.Fatal(err)
	}
	return dir, xPath, yPath
}

// --- Figure 5(b): Baselines Sparse -----------------------------------------

func BenchmarkFig5bBaselinesSparseTF(b *testing.B) {
	x, y := sparseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.Naive, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5bBaselinesSparseTFG(b *testing.B) {
	x, y := sparseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.GraphCSE, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5bBaselinesSparseJulia(b *testing.B) {
	x, y := sparseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.Eager, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5bBaselinesSparseSysDS(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 0.1, 105)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, false, false)
		return err
	})
}

// --- Figure 5(c): Reuse Dense ----------------------------------------------

func BenchmarkFig5cReuseDenseOff(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 1.0, 106)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, false, false)
		return err
	})
}

func BenchmarkFig5cReuseDenseOn(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 1.0, 107)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, true, false)
		return err
	})
}

// --- Figure 5(d): Reuse Sparse over input size -----------------------------

func BenchmarkFig5dReuseSparse(b *testing.B) {
	for _, rows := range benchScale.RowsSweep {
		for _, reuse := range []bool{false, true} {
			name := fmt.Sprintf("rows=%d/reuse=%v", rows, reuse)
			b.Run(name, func(b *testing.B) {
				dir := b.TempDir()
				xPath, yPath, err := experiments.PrepareWorkloadFiles(dir, rows, benchScale.Cols, 0.1, int64(rows))
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, benchScale.KFixed, reuse, false); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations --------------------------------------------------------------

func BenchmarkAblationSteplmPartialReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSteplmPartialReuse(benchScale.Rows, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDistVsLocal(b *testing.B) {
	x := matrix.RandUniform(benchScale.Rows, benchScale.Cols, 0, 1, 1.0, 1)
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matrix.TSMM(x, 0)
		}
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.AblationDistVsLocal([]int{benchScale.Rows}, benchScale.Cols, 512); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationFederatedTSMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFederatedTSMM(benchScale.Rows, benchScale.Cols); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParamServ(b *testing.B) {
	x, y := matrix.SyntheticRegression(benchScale.Rows, 20, 1.0, 3)
	init := matrix.NewDense(20, 1)
	for _, mode := range []paramserv.UpdateMode{paramserv.BSP, paramserv.ASP} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := paramserv.Config{Workers: 4, Epochs: 2, BatchSize: 64, LearnRate: 0.1, Mode: mode}
				if _, _, err := paramserv.Train(x, y, init, paramserv.LinRegGradient(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Kernel micro-benchmarks (supporting data for Figure 5(a)) -------------

func BenchmarkKernelGEMMStandard(b *testing.B) {
	x := matrix.RandUniform(512, 256, -1, 1, 1.0, 5)
	y := matrix.RandUniform(256, 128, -1, 1, 1.0, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.Multiply(x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelGEMMBLASLike(b *testing.B) {
	x := matrix.RandUniform(512, 256, -1, 1, 1.0, 5)
	y := matrix.RandUniform(256, 128, -1, 1, 1.0, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.MultiplyBLAS(x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelTSMMDense(b *testing.B) {
	x := matrix.RandUniform(benchScale.Rows, benchScale.Cols, -1, 1, 1.0, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.TSMM(x, 0)
	}
}

func BenchmarkKernelTSMMSparse(b *testing.B) {
	x := matrix.RandUniform(benchScale.Rows, benchScale.Cols, 0, 1, 0.1, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.TSMM(x, 0)
	}
}

func BenchmarkCSVParse(b *testing.B) {
	dir := b.TempDir()
	xPath, _, err := experiments.PrepareWorkloadFiles(dir, benchScale.Rows, benchScale.Cols, 1.0, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ReadWorkloadCSV(xPath); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Inter-operator DAG scheduler ------------------------------------------

// benchmarkSchedulerWideDAG executes a basic block with eight independent
// feature-transform chains (each a scale, shift and Gram computation on X).
// With InterOpParallelism > 1 the chains run concurrently on the scheduler's
// worker pool; kernels are pinned to one thread so the benchmark isolates
// inter-operator parallelism from intra-operator parallelism.
func benchmarkSchedulerWideDAG(b *testing.B, interOp int) {
	const branches = 8
	script := ""
	sum := ""
	for k := 1; k <= branches; k++ {
		script += fmt.Sprintf("F%d = X * %d + %d\nG%d = t(F%d) %%*%% F%d\n", k, k, k, k, k, k)
		if k > 1 {
			sum += " + "
		}
		sum += fmt.Sprintf("sum(G%d)", k)
	}
	script += "total = " + sum + "\n"
	ctx := systemds.NewContext(
		systemds.WithParallelism(1),
		systemds.WithInterOpParallelism(interOp),
		systemds.WithLineage(false),
	)
	prepared, err := ctx.Prepare(script, "total")
	if err != nil {
		b.Fatal(err)
	}
	x := matrix.RandUniform(600, 120, -1, 1, 1.0, 404)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prepared.Execute(map[string]any{"X": x}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerInterOpSequential(b *testing.B) { benchmarkSchedulerWideDAG(b, 1) }

func BenchmarkSchedulerInterOpWorkers2(b *testing.B) { benchmarkSchedulerWideDAG(b, 2) }

func BenchmarkSchedulerInterOpWorkers4(b *testing.B) { benchmarkSchedulerWideDAG(b, 4) }

func BenchmarkSchedulerInterOpWorkers8(b *testing.B) { benchmarkSchedulerWideDAG(b, 8) }
