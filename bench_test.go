// Benchmarks regenerating the paper's evaluation (Figure 5(a)-(d)) and the
// ablation experiments of DESIGN.md, one benchmark family per figure. The
// testing.B benchmarks run at a reduced scale so `go test -bench=.` finishes
// in minutes; cmd/sysdsbench runs the same harness at the small or paper
// scale and prints the full series.
package systemds_test

import (
	"fmt"
	"testing"

	systemds "github.com/systemds/systemds-go"
	"github.com/systemds/systemds-go/internal/baselines"
	"github.com/systemds/systemds-go/internal/compress"
	"github.com/systemds/systemds-go/internal/core"
	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/experiments"
	"github.com/systemds/systemds-go/internal/hops"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/paramserv"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// benchScale is the data size used by the benchmarks.
var benchScale = experiments.TinyScale()

// --- Figure 5(a): Baselines Dense -----------------------------------------

func benchmarkFig5aSystem(b *testing.B, run func(k int) error) {
	for _, k := range benchScale.Ks {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := run(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func denseWorkloadData(b *testing.B) (x, y *matrix.MatrixBlock) {
	b.Helper()
	return matrix.SyntheticRegression(benchScale.Rows, benchScale.Cols, 1.0, 101)
}

func sparseWorkloadData(b *testing.B) (x, y *matrix.MatrixBlock) {
	b.Helper()
	return matrix.SyntheticRegression(benchScale.Rows, benchScale.Cols, 0.1, 102)
}

func lambdaValues(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = float64(i+1) / 1000
	}
	return out
}

func BenchmarkFig5aBaselinesDenseTF(b *testing.B) {
	x, y := denseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.Naive, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5aBaselinesDenseTFG(b *testing.B) {
	x, y := denseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.GraphCSE, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5aBaselinesDenseJulia(b *testing.B) {
	x, y := denseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.Eager, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5aBaselinesDenseSysDS(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 1.0, 103)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, false, false)
		return err
	})
}

func BenchmarkFig5aBaselinesDenseSysDSBLAS(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 1.0, 104)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, false, true)
		return err
	})
}

// figureFiles materializes the CSV inputs of the end-to-end workload.
func figureFiles(b *testing.B, sparsity float64, seed int64) (dir, xPath, yPath string) {
	b.Helper()
	dir = b.TempDir()
	var err error
	xPath, yPath, err = experiments.PrepareWorkloadFiles(dir, benchScale.Rows, benchScale.Cols, sparsity, seed)
	if err != nil {
		b.Fatal(err)
	}
	return dir, xPath, yPath
}

// --- Figure 5(b): Baselines Sparse -----------------------------------------

func BenchmarkFig5bBaselinesSparseTF(b *testing.B) {
	x, y := sparseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.Naive, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5bBaselinesSparseTFG(b *testing.B) {
	x, y := sparseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.GraphCSE, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5bBaselinesSparseJulia(b *testing.B) {
	x, y := sparseWorkloadData(b)
	benchmarkFig5aSystem(b, func(k int) error {
		_, err := baselines.RunHyperParameterWorkload(baselines.Eager, x, y, lambdaValues(k), 0)
		return err
	})
}

func BenchmarkFig5bBaselinesSparseSysDS(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 0.1, 105)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, false, false)
		return err
	})
}

// --- Figure 5(c): Reuse Dense ----------------------------------------------

func BenchmarkFig5cReuseDenseOff(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 1.0, 106)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, false, false)
		return err
	})
}

func BenchmarkFig5cReuseDenseOn(b *testing.B) {
	dir, xPath, yPath := figureFiles(b, 1.0, 107)
	benchmarkFig5aSystem(b, func(k int) error {
		_, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, k, true, false)
		return err
	})
}

// --- Figure 5(d): Reuse Sparse over input size -----------------------------

func BenchmarkFig5dReuseSparse(b *testing.B) {
	for _, rows := range benchScale.RowsSweep {
		for _, reuse := range []bool{false, true} {
			name := fmt.Sprintf("rows=%d/reuse=%v", rows, reuse)
			b.Run(name, func(b *testing.B) {
				dir := b.TempDir()
				xPath, yPath, err := experiments.PrepareWorkloadFiles(dir, rows, benchScale.Cols, 0.1, int64(rows))
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := experiments.RunSysDSWorkload(dir, xPath, yPath, benchScale.KFixed, reuse, false); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations --------------------------------------------------------------

func BenchmarkAblationSteplmPartialReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSteplmPartialReuse(benchScale.Rows, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDistVsLocal(b *testing.B) {
	x := matrix.RandUniform(benchScale.Rows, benchScale.Cols, 0, 1, 1.0, 1)
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matrix.TSMM(x, 0)
		}
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.AblationDistVsLocal([]int{benchScale.Rows}, benchScale.Cols, 512); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationFederatedTSMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFederatedTSMM(benchScale.Rows, benchScale.Cols); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParamServ(b *testing.B) {
	x, y := matrix.SyntheticRegression(benchScale.Rows, 20, 1.0, 3)
	init := matrix.NewDense(20, 1)
	for _, mode := range []paramserv.UpdateMode{paramserv.BSP, paramserv.ASP} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := paramserv.Config{Workers: 4, Epochs: 2, BatchSize: 64, LearnRate: 0.1, Mode: mode}
				if _, _, err := paramserv.Train(x, y, init, paramserv.LinRegGradient(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Kernel micro-benchmarks (supporting data for Figure 5(a)) -------------

// benchGEMMKernel times m x k %*% k x n with the given kernel forced and
// reports arithmetic throughput (gflops) alongside ns/op.
func benchGEMMKernel(b *testing.B, m, k, n int, kern matrix.GEMMKernel) {
	prev := matrix.SetGEMMKernel(kern)
	defer matrix.SetGEMMKernel(prev)
	x := matrix.RandUniform(m, k, -1, 1, 1.0, 5)
	y := matrix.RandUniform(k, n, -1, 1, 1.0, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.Multiply(x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

// BenchmarkKernelGEMMStandard pins the simple blocked i-k-j kernel (the
// pre-tiled baseline); without the forced mode its shape now auto-selects the
// tiled engine and the benchmark would stop measuring the baseline.
func BenchmarkKernelGEMMStandard(b *testing.B) {
	benchGEMMKernel(b, 512, 256, 128, matrix.GEMMSimple)
}

func BenchmarkKernelGEMMStandard1024(b *testing.B) {
	benchGEMMKernel(b, 1024, 1024, 1024, matrix.GEMMSimple)
}

func BenchmarkKernelGEMMTiled512(b *testing.B) {
	benchGEMMKernel(b, 512, 512, 512, matrix.GEMMTiled)
}

func BenchmarkKernelGEMMTiled1024(b *testing.B) {
	benchGEMMKernel(b, 1024, 1024, 1024, matrix.GEMMTiled)
}

func BenchmarkKernelGEMMTiled2048(b *testing.B) {
	benchGEMMKernel(b, 2048, 2048, 2048, matrix.GEMMTiled)
}

func BenchmarkKernelGEMMBLASLike(b *testing.B) {
	x := matrix.RandUniform(512, 256, -1, 1, 1.0, 5)
	y := matrix.RandUniform(256, 128, -1, 1, 1.0, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.MultiplyBLAS(x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMultiplyAccKernel times the accumulate form the blocked dist executors
// run stage-by-stage (acc += a %*% b into a preallocated accumulator).
func benchMultiplyAccKernel(b *testing.B, dim int, kern matrix.GEMMKernel) {
	prev := matrix.SetGEMMKernel(kern)
	defer matrix.SetGEMMKernel(prev)
	x := matrix.RandUniform(dim, dim, -1, 1, 1.0, 5)
	y := matrix.RandUniform(dim, dim, -1, 1, 1.0, 6)
	acc := matrix.NewDense(dim, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := matrix.MultiplyAcc(acc, x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
	flops := 2 * float64(dim) * float64(dim) * float64(dim)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

func BenchmarkKernelMultiplyAccStandard1024(b *testing.B) {
	benchMultiplyAccKernel(b, 1024, matrix.GEMMSimple)
}

func BenchmarkKernelMultiplyAccTiled1024(b *testing.B) {
	benchMultiplyAccKernel(b, 1024, matrix.GEMMTiled)
}

// benchTSMMKernel times t(X) %*% X; flops counts the upper triangle both
// kernels compute (the lower half is mirrored, not recomputed).
func benchTSMMKernel(b *testing.B, rows, cols int, kern matrix.GEMMKernel) {
	prev := matrix.SetGEMMKernel(kern)
	defer matrix.SetGEMMKernel(prev)
	x := matrix.RandUniform(rows, cols, -1, 1, 1.0, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.TSMM(x, 0)
	}
	flops := float64(rows) * float64(cols+1) * float64(cols)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

func BenchmarkKernelTSMMStandard4096x512(b *testing.B) {
	benchTSMMKernel(b, 4096, 512, matrix.GEMMSimple)
}

func BenchmarkKernelTSMMTiled4096x512(b *testing.B) {
	benchTSMMKernel(b, 4096, 512, matrix.GEMMTiled)
}

func BenchmarkKernelTSMMDense(b *testing.B) {
	x := matrix.RandUniform(benchScale.Rows, benchScale.Cols, -1, 1, 1.0, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.TSMM(x, 0)
	}
}

func BenchmarkKernelTSMMSparse(b *testing.B) {
	x := matrix.RandUniform(benchScale.Rows, benchScale.Cols, 0, 1, 0.1, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.TSMM(x, 0)
	}
}

func BenchmarkCSVParse(b *testing.B) {
	dir := b.TempDir()
	xPath, _, err := experiments.PrepareWorkloadFiles(dir, benchScale.Rows, benchScale.Cols, 1.0, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ReadWorkloadCSV(xPath); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Inter-operator DAG scheduler ------------------------------------------

// benchmarkSchedulerWideDAG executes a basic block with eight independent
// feature-transform chains (each a scale, shift and Gram computation on X).
// With InterOpParallelism > 1 the chains run concurrently on the scheduler's
// worker pool; kernels are pinned to one thread so the benchmark isolates
// inter-operator parallelism from intra-operator parallelism.
func benchmarkSchedulerWideDAG(b *testing.B, interOp int) {
	const branches = 8
	script := ""
	sum := ""
	for k := 1; k <= branches; k++ {
		script += fmt.Sprintf("F%d = X * %d + %d\nG%d = t(F%d) %%*%% F%d\n", k, k, k, k, k, k)
		if k > 1 {
			sum += " + "
		}
		sum += fmt.Sprintf("sum(G%d)", k)
	}
	script += "total = " + sum + "\n"
	ctx := systemds.NewContext(
		systemds.WithParallelism(1),
		systemds.WithInterOpParallelism(interOp),
		systemds.WithLineage(false),
	)
	prepared, err := ctx.Prepare(script, "total")
	if err != nil {
		b.Fatal(err)
	}
	x := matrix.RandUniform(600, 120, -1, 1, 1.0, 404)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prepared.Execute(map[string]any{"X": x}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerInterOpSequential(b *testing.B) { benchmarkSchedulerWideDAG(b, 1) }

func BenchmarkSchedulerInterOpWorkers2(b *testing.B) { benchmarkSchedulerWideDAG(b, 2) }

func BenchmarkSchedulerInterOpWorkers4(b *testing.B) { benchmarkSchedulerWideDAG(b, 4) }

func BenchmarkSchedulerInterOpWorkers8(b *testing.B) { benchmarkSchedulerWideDAG(b, 8) }

// --- Fused operator pipelines (PR 3) ----------------------------------------
//
// Fused-vs-unfused pairs on 2k x 2k dense inputs. The fused kernels must show
// a B/op drop (no full-size intermediate is materialized) and, with spare
// cores, a wall-clock win from the single pass; run with -benchmem.

const fusedBenchDim = 2048

func fusedBenchData() (x, y *matrix.MatrixBlock, v *matrix.MatrixBlock) {
	x = matrix.RandUniform(fusedBenchDim, fusedBenchDim, -1, 1, 1.0, 301)
	y = matrix.RandUniform(fusedBenchDim, fusedBenchDim, -1, 1, 1.0, 302)
	v = matrix.RandUniform(fusedBenchDim, 1, -1, 1, 1.0, 303)
	return
}

func benchmarkFusedSumXY(b *testing.B, threads int) {
	x, y, _ := fusedBenchData()
	prog := &matrix.CellProgram{
		Instrs: []matrix.CellInstr{
			{Code: matrix.CellLoad, Arg: 0}, {Code: matrix.CellLoad, Arg: 1},
			{Code: matrix.CellBinary, Bin: matrix.OpMul},
		},
		NumArgs: 2, Annihilating: true,
	}
	args := []matrix.CellArg{{Mat: x}, {Mat: y}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.FusedAgg(prog, matrix.AggSum, args, threads); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkUnfusedSumXY(b *testing.B, threads int) {
	x, y, _ := fusedBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prod, err := matrix.CellwiseOp(x, y, matrix.OpMul, threads)
		if err != nil {
			b.Fatal(err)
		}
		_ = matrix.Sum(prod, threads)
	}
}

func BenchmarkFusedSumXYThreads1(b *testing.B)   { benchmarkFusedSumXY(b, 1) }
func BenchmarkFusedSumXYThreads4(b *testing.B)   { benchmarkFusedSumXY(b, 4) }
func BenchmarkUnfusedSumXYThreads1(b *testing.B) { benchmarkUnfusedSumXY(b, 1) }
func BenchmarkUnfusedSumXYThreads4(b *testing.B) { benchmarkUnfusedSumXY(b, 4) }

func benchmarkFusedMMChain(b *testing.B, threads int) {
	x, _, v := fusedBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.MMChain(x, v, nil, threads); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkUnfusedMMChain(b *testing.B, threads int) {
	x, _, v := fusedBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xv, err := matrix.Multiply(x, v, threads)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := matrix.Multiply(matrix.Transpose(x), xv, threads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusedMMChainThreads1(b *testing.B)   { benchmarkFusedMMChain(b, 1) }
func BenchmarkFusedMMChainThreads4(b *testing.B)   { benchmarkFusedMMChain(b, 4) }
func BenchmarkUnfusedMMChainThreads1(b *testing.B) { benchmarkUnfusedMMChain(b, 1) }
func BenchmarkUnfusedMMChainThreads4(b *testing.B) { benchmarkUnfusedMMChain(b, 4) }

// Kernel-parallelism benchmarks: the formerly single-threaded elementwise and
// aggregation kernels, at 1 vs 4 threads.

func benchmarkKernelParallelCellwise(b *testing.B, threads int) {
	x, y, _ := fusedBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.CellwiseOp(x, y, matrix.OpAdd, threads); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkKernelParallelSum(b *testing.B, threads int) {
	x, _, _ := fusedBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = matrix.Sum(x, threads)
	}
}

func benchmarkKernelParallelColSums(b *testing.B, threads int) {
	x, _, _ := fusedBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = matrix.ColSums(x, threads)
	}
}

func BenchmarkKernelParallelCellwiseThreads1(b *testing.B) { benchmarkKernelParallelCellwise(b, 1) }
func BenchmarkKernelParallelCellwiseThreads4(b *testing.B) { benchmarkKernelParallelCellwise(b, 4) }
func BenchmarkKernelParallelSumThreads1(b *testing.B)      { benchmarkKernelParallelSum(b, 1) }
func BenchmarkKernelParallelSumThreads4(b *testing.B)      { benchmarkKernelParallelSum(b, 4) }
func BenchmarkKernelParallelColSumsThreads1(b *testing.B)  { benchmarkKernelParallelColSums(b, 1) }
func BenchmarkKernelParallelColSumsThreads4(b *testing.B)  { benchmarkKernelParallelColSums(b, 4) }

// BenchmarkFusedPipelineEndToEnd measures the DML-level pipeline with fusion
// on and off (compile + execute, fused counters verified in tests).
func benchmarkFusedPipelineEndToEnd(b *testing.B, fusion bool) {
	x := matrix.RandUniform(1024, 256, -1, 1, 1.0, 304)
	y := matrix.RandUniform(1024, 256, -1, 1, 1.0, 305)
	v := matrix.RandUniform(256, 1, -1, 1, 1.0, 306)
	ctx := systemds.NewContext(systemds.WithFusion(fusion), systemds.WithLineage(false))
	prepared, err := ctx.Prepare("s = sum(X * Y)\ng = t(X) %*% (X %*% v)\nq = sum(g)", "s", "q")
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[string]any{"X": x, "Y": y, "v": v}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prepared.Execute(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusedPipelineEndToEndOn(b *testing.B)  { benchmarkFusedPipelineEndToEnd(b, true) }
func BenchmarkFusedPipelineEndToEndOff(b *testing.B) { benchmarkFusedPipelineEndToEnd(b, false) }

// Planner-chosen vs forced-strategy matmult (ablation A6): the same
// both-over-budget multiplication executed through the engine (the cost-based
// planner picks the shuffle split) and through each forced dist executor.

const mmStratM, mmStratK, mmStratN, mmStratBS = 128, 2048, 64, 64

func mmStrategyData() (a, bm *matrix.MatrixBlock) {
	a = matrix.RandUniform(mmStratM, mmStratK, -1, 1, 1.0, 401)
	bm = matrix.RandUniform(mmStratK, mmStratN, -1, 1, 1.0, 402)
	return
}

func BenchmarkMatMultStrategyPlanner(b *testing.B) {
	x, y := mmStrategyData()
	ctx := systemds.NewContext(
		systemds.WithDistributedBackend(true),
		systemds.WithDistBlocksize(mmStratBS),
		systemds.WithOperatorMemBudget(int64(mmStratK*mmStratN*8/2)),
		systemds.WithLineage(false),
	)
	prepared, err := ctx.Prepare("s = sum(A %*% B)", "s")
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[string]any{"A": x, "B": y}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prepared.Execute(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkMatMultStrategyForced(b *testing.B, run func(ba, bb *dist.BlockedMatrix, rb *matrix.MatrixBlock) error) {
	x, y := mmStrategyData()
	ba, err := dist.FromMatrixBlock(x, mmStratBS)
	if err != nil {
		b.Fatal(err)
	}
	bb, err := dist.FromMatrixBlock(y, mmStratBS)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(ba, bb, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMultStrategyForcedBR(b *testing.B) {
	benchmarkMatMultStrategyForced(b, func(ba, _ *dist.BlockedMatrix, rb *matrix.MatrixBlock) error {
		_, err := dist.MatMult(ba, rb, 0)
		return err
	})
}

func BenchmarkMatMultStrategyForcedGJ(b *testing.B) {
	benchmarkMatMultStrategyForced(b, func(ba, bb *dist.BlockedMatrix, _ *matrix.MatrixBlock) error {
		_, err := dist.MatMultBB(ba, bb, 0)
		return err
	})
}

func BenchmarkMatMultStrategyForcedSH(b *testing.B) {
	benchmarkMatMultStrategyForced(b, func(ba, bb *dist.BlockedMatrix, _ *matrix.MatrixBlock) error {
		_, err := dist.MatMultShuffle(ba, bb, 0)
		return err
	})
}

// --- PR 5: compressed linear algebra ---------------------------------------
//
// BenchmarkCompressedMV{DDC,RLE,Uncompressed} time the matrix-vector product
// on a 16384 x 128 matrix under the three column-group encodings. The
// "databytes/op" metric reports the bytes of matrix representation the kernel
// streams per operation (the quantity compression shrinks); with -benchmem
// the usual B/op column reports per-op allocations (both paths allocate the
// same output vector).

func compressedMVBench(b *testing.B, x *matrix.MatrixBlock) {
	b.Helper()
	cm, plan, ok := compress.Compress(x, compress.PlannerConfig{}, 1)
	if !ok {
		b.Fatalf("benchmark input did not compress: %v", plan)
	}
	v := matrix.RandUniform(x.Cols(), 1, -1, 1, 1.0, 77)
	dataBytes := cm.InMemorySize() + int64(x.Cols()+x.Rows())*8
	b.SetBytes(dataBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cm.MatVec(v, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dataBytes), "databytes/op")
}

// ddcBenchMatrix has 8 distinct values per column in random row order: the
// dense-dictionary-coding regime.
func ddcBenchMatrix() *matrix.MatrixBlock {
	noise := matrix.RandUniform(16384, 128, 0, 1, 1.0, 501)
	x := matrix.NewDense(16384, 128)
	for r := 0; r < 16384; r++ {
		for c := 0; c < 128; c++ {
			x.Set(r, c, float64(int(noise.Get(r, c)*8)))
		}
	}
	x.RecomputeNNZ()
	return x
}

// rleBenchMatrix changes value every 256 rows: the run-length regime.
func rleBenchMatrix() *matrix.MatrixBlock {
	x := matrix.NewDense(16384, 128)
	for r := 0; r < 16384; r++ {
		for c := 0; c < 128; c++ {
			x.Set(r, c, float64(((r/256)+c)%16))
		}
	}
	x.RecomputeNNZ()
	return x
}

func BenchmarkCompressedMVDDC(b *testing.B) { compressedMVBench(b, ddcBenchMatrix()) }

func BenchmarkCompressedMVRLE(b *testing.B) { compressedMVBench(b, rleBenchMatrix()) }

// BenchmarkCompressedMVUncompressed is the dense-kernel baseline over the
// same logical matrix.
func BenchmarkCompressedMVUncompressed(b *testing.B) {
	x := ddcBenchMatrix()
	v := matrix.RandUniform(x.Cols(), 1, -1, 1, 1.0, 77)
	dataBytes := x.InMemorySize() + int64(x.Cols()+x.Rows())*8
	b.SetBytes(dataBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.Multiply(x, v, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dataBytes), "databytes/op")
}

// BenchmarkCompressedLoopEpoch times one epoch of the compressed gradient
// step (X %*% w, then t(X) %*% r via the vector-matrix kernel) against the
// same epoch on the dense block.
func BenchmarkCompressedLoopEpoch(b *testing.B) {
	x := ddcBenchMatrix()
	cm, _, ok := compress.Compress(x, compress.PlannerConfig{}, 1)
	if !ok {
		b.Fatal("benchmark input did not compress")
	}
	w := matrix.RandUniform(x.Cols(), 1, -1, 1, 1.0, 78)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cm.MMChain(w, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUncompressedLoopEpoch(b *testing.B) {
	x := ddcBenchMatrix()
	w := matrix.RandUniform(x.Cols(), 1, -1, 1, 1.0, 78)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.MMChain(x, w, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PR 8: deep compressed execution ----------------------------------------
//
// BenchmarkCompressedTSMM times the Gram matrix t(X) %*% X straight off the
// column-group dictionaries (counts-weighted self products, co-occurrence-
// weighted cross products) against decompress-then-tiled-TSMM on the same
// logical matrix. BenchmarkCompressedMMDense times the matrix right-hand-side
// kernel X %*% B, and BenchmarkCompressedDistMV the partitioned broadcast-
// right executor of the blocked backend. All report databytes/op (the bytes
// of matrix representation streamed per op) and gflops of the equivalent
// dense computation.

// tsmmBenchMatrix is the co-coded regime the compressed TSMM targets: 16
// bands of 8 adjacent columns each derive from one shared 8-valued signal
// (plus a per-column offset), so the greedy co-coding planner collapses each
// band into one tuple-dictionary group and the Gram matrix reduces to a few
// dozen small dictionary cross products instead of a dense O(rows * n^2)
// sweep. Independent-column DDC data (ddcBenchMatrix) stays the driver of the
// MV/MM benchmarks, where per-group pre-aggregation wins on its own.
func tsmmBenchMatrix() *matrix.MatrixBlock {
	const rows, cols, band = 16384, 128, 8
	x := matrix.NewDense(rows, cols)
	noise := matrix.RandUniform(rows, cols/band, 0, 1, 1.0, 502)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			signal := float64(int(noise.Get(r, c/band) * 8))
			x.Set(r, c, signal+float64(c%band))
		}
	}
	x.RecomputeNNZ()
	return x
}

func BenchmarkCompressedTSMM(b *testing.B) {
	x := tsmmBenchMatrix()
	cm, _, ok := compress.Compress(x, compress.PlannerConfig{}, 1)
	if !ok {
		b.Fatal("benchmark input did not compress")
	}
	dataBytes := cm.InMemorySize()
	flops := float64(x.Rows()) * float64(x.Cols()) * float64(x.Cols())
	b.SetBytes(dataBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.TSMM(1)
	}
	b.ReportMetric(float64(dataBytes), "databytes/op")
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

// BenchmarkCompressedTSMMDecompress is the fallback baseline the compressed
// TSMM kernel replaces: decompress the column groups, then run the tiled
// dense TSMM over the materialized block.
func BenchmarkCompressedTSMMDecompress(b *testing.B) {
	x := tsmmBenchMatrix()
	cm, _, ok := compress.Compress(x, compress.PlannerConfig{}, 1)
	if !ok {
		b.Fatal("benchmark input did not compress")
	}
	dataBytes := x.InMemorySize()
	flops := float64(x.Rows()) * float64(x.Cols()) * float64(x.Cols())
	b.SetBytes(dataBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.TSMM(cm.Decompress(), 1)
	}
	b.ReportMetric(float64(dataBytes), "databytes/op")
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

func BenchmarkCompressedMMDense(b *testing.B) {
	x := ddcBenchMatrix()
	cm, _, ok := compress.Compress(x, compress.PlannerConfig{}, 1)
	if !ok {
		b.Fatal("benchmark input did not compress")
	}
	const k = 16
	rhs := matrix.RandUniform(x.Cols(), k, -1, 1, 1.0, 79)
	dataBytes := cm.InMemorySize() + int64(x.Cols()*k+x.Rows()*k)*8
	flops := 2 * float64(x.Rows()) * float64(x.Cols()) * float64(k)
	b.SetBytes(dataBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cm.MatMultDense(rhs, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dataBytes), "databytes/op")
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

// BenchmarkCompressedMMDenseDecompress is the decompress-then-dense baseline
// of the matrix right-hand-side kernel.
func BenchmarkCompressedMMDenseDecompress(b *testing.B) {
	x := ddcBenchMatrix()
	cm, _, ok := compress.Compress(x, compress.PlannerConfig{}, 1)
	if !ok {
		b.Fatal("benchmark input did not compress")
	}
	const k = 16
	rhs := matrix.RandUniform(x.Cols(), k, -1, 1, 1.0, 79)
	dataBytes := x.InMemorySize() + int64(x.Cols()*k+x.Rows()*k)*8
	flops := 2 * float64(x.Rows()) * float64(x.Cols()) * float64(k)
	b.SetBytes(dataBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.Multiply(cm.Decompress(), rhs, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dataBytes), "databytes/op")
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

func BenchmarkCompressedDistMV(b *testing.B) {
	x := ddcBenchMatrix()
	cm, _, ok := compress.Compress(x, compress.PlannerConfig{}, 1)
	if !ok {
		b.Fatal("benchmark input did not compress")
	}
	part, err := dist.PartitionCompressed(cm, 1024)
	if err != nil {
		b.Fatal(err)
	}
	v := matrix.RandUniform(x.Cols(), 1, -1, 1, 1.0, 80)
	dataBytes := part.InMemorySize() + int64(x.Cols()+x.Rows())*8
	flops := 2 * float64(x.Rows()) * float64(x.Cols())
	b.SetBytes(dataBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.CompressedMatVec(part, v, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dataBytes), "databytes/op")
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

// --- Adaptive runtime: cross-run lineage reuse + calibration ---------------

const lineageBenchScript = `
[B, losses] = gridSearchLM(X, y, lambdas)
`

func lineageBenchInputs() map[string]any {
	x, y := matrix.SyntheticRegression(benchScale.Rows, benchScale.Cols, 1.0, 115)
	lambdas := matrix.FromRows([][]float64{{0.001}, {0.01}, {0.1}, {1}, {10}})
	return map[string]any{"X": x, "y": y, "lambdas": lambdas}
}

func lineageReuseContext(dir string) *systemds.Context {
	return systemds.NewContext(
		systemds.WithPersistentLineage(dir),
		systemds.WithCompression(true),
		systemds.WithParallelism(4),
	)
}

// BenchmarkLineageReuseCold times the grid-search scenario against an empty
// persistent store: every reusable intermediate is computed and spilled.
// databytes/op reports the bytes written to the store per run.
func BenchmarkLineageReuseCold(b *testing.B) {
	inputs := lineageBenchInputs()
	var dataBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		// context construction measures/caches the machine profile, untimed
		ctx := lineageReuseContext(dir)
		b.StartTimer()
		if _, err := ctx.Execute(lineageBenchScript, inputs, "B", "losses"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		dataBytes += ctx.LineageStoreStats().BytesWritten
		b.StartTimer()
	}
	b.ReportMetric(float64(dataBytes)/float64(b.N), "databytes/op")
}

// BenchmarkLineageReuseWarm primes the store once, then times re-runs in
// fresh contexts (fresh in-memory cache, same directory — the next process
// of the lifecycle). databytes/op reports the spill bytes read back per run.
func BenchmarkLineageReuseWarm(b *testing.B) {
	inputs := lineageBenchInputs()
	dir := b.TempDir()
	if _, err := lineageReuseContext(dir).Execute(lineageBenchScript, inputs, "B", "losses"); err != nil {
		b.Fatal(err)
	}
	var dataBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := lineageReuseContext(dir)
		b.StartTimer()
		if _, err := ctx.Execute(lineageBenchScript, inputs, "B", "losses"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st := ctx.LineageStoreStats()
		if st.Hits == 0 {
			b.Fatal("warm run reused nothing from the persistent store")
		}
		dataBytes += st.BytesRead
		b.StartTimer()
	}
	b.ReportMetric(float64(dataBytes)/float64(b.N), "databytes/op")
}

// benchmarkCalibrationDelta runs a matmult whose static memory estimate sits
// just over the CP budget (so the uncalibrated planner ships it to the
// distributed backend) with and without synthetic history saying the static
// model overestimates 8x. The calibrated planner keeps the operator in CP;
// the pair quantifies what a learned crossover is worth end to end.
func benchmarkCalibrationDelta(b *testing.B, calib *hops.Calibration) {
	const n = 256
	am := matrix.RandUniform(n, n, -1, 1, 1.0, 61)
	bm := matrix.RandUniform(n, n, -1, 1, 1.0, 62)
	sz := types.EstimateSize(types.NewDataCharacteristics(n, n, 1024, -1))
	cfg := runtime.DefaultConfig()
	cfg.Parallelism = 4
	cfg.DistEnabled = true
	cfg.OperatorMemBudget = 2*sz - 1 // out + maxIn just over budget
	cfg.Calib = calib
	eng := core.NewEngine(cfg)
	inputs := map[string]any{"A": am, "B": bm}
	dataBytes := 2 * am.InMemorySize()
	b.SetBytes(dataBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Execute(`C = A %*% B`, inputs, []string{"C"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dataBytes), "databytes/op")
}

func BenchmarkCalibrationDeltaUncalibrated(b *testing.B) {
	benchmarkCalibrationDelta(b, nil)
}

func BenchmarkCalibrationDeltaCalibrated(b *testing.B) {
	calib := hops.NewCalibration()
	for i := 0; i < 5; i++ {
		calib.Observe("ba+*", 8000, 1000) // history: outputs 8x below estimate
	}
	benchmarkCalibrationDelta(b, calib)
}
