package systemds_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	systemds "github.com/systemds/systemds-go"
)

func TestPublicAPIQuickstart(t *testing.T) {
	ctx := systemds.NewContext(systemds.WithParallelism(2))
	X, y := systemds.SyntheticRegression(500, 8, 1.0, 11)
	res, err := ctx.Execute(`
B = lm(X, y, reg=0.0001)
yhat = lmPredict(X, B)
trainR2 = r2(yhat, y)
`, map[string]any{"X": X, "y": y}, "B", "trainR2")
	if err != nil {
		t.Fatal(err)
	}
	B, err := res.Matrix("B")
	if err != nil {
		t.Fatal(err)
	}
	if B.Rows() != 8 || B.Cols() != 1 {
		t.Errorf("B dims %dx%d", B.Rows(), B.Cols())
	}
	r2, err := res.Float("trainR2")
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.99 {
		t.Errorf("training R2 = %v", r2)
	}
}

func TestPublicAPIResultsAccessors(t *testing.T) {
	ctx := systemds.NewContext()
	res, err := ctx.Execute(`
m = matrix(1, 2, 2)
f = 3.5
b = TRUE
s = "hello"
`, nil, "m", "f", "b", "s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Matrix("m"); err != nil {
		t.Error(err)
	}
	if v, err := res.Float("f"); err != nil || v != 3.5 {
		t.Errorf("Float = %v, %v", v, err)
	}
	if v, err := res.Bool("b"); err != nil || !v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	if v, err := res.String("s"); err != nil || v != "hello" {
		t.Errorf("String = %v, %v", v, err)
	}
	// type mismatches
	if _, err := res.Matrix("f"); err == nil {
		t.Error("expected type error")
	}
	if _, err := res.Float("m"); err == nil {
		t.Error("expected type error")
	}
	if _, err := res.String("f"); err == nil {
		t.Error("expected type error")
	}
	if _, err := res.Float("missing"); err == nil {
		t.Error("expected missing output error")
	}
}

func TestPublicAPIMatrixHelpers(t *testing.T) {
	m := systemds.NewMatrix(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.Get(1, 2) != 6 {
		t.Errorf("NewMatrix data wrong")
	}
	z := systemds.NewMatrix(2, 2, nil)
	if z.NNZ() != 0 {
		t.Error("zero matrix not empty")
	}
	fr := systemds.MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if fr.Get(1, 0) != 3 {
		t.Error("MatrixFromRows wrong")
	}
	r := systemds.RandMatrix(10, 5, 0.5, 3)
	if r.Rows() != 10 || r.Cols() != 5 {
		t.Error("RandMatrix dims wrong")
	}
}

func TestPublicAPIFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	m := systemds.MatrixFromRows([][]float64{{1.5, 2}, {3, 4}})
	if err := systemds.WriteMatrixCSV(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := systemds.ReadMatrixCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equals(m, 0) {
		t.Error("CSV round trip changed matrix")
	}
	// frame reading
	fpath := filepath.Join(dir, "f.csv")
	if err := os.WriteFile(fpath, []byte("name,score\nanna,1.5\nbert,2.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := systemds.ReadFrameCSV(fpath, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 2 || f.ColumnNames()[0] != "name" {
		t.Errorf("frame = %v", f)
	}
}

func TestPublicAPIExecuteFile(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "script.dml")
	if err := os.WriteFile(script, []byte("y = sum(X) * 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := systemds.NewContext()
	res, err := ctx.ExecuteFile(script, map[string]any{"X": systemds.MatrixFromRows([][]float64{{1, 2}, {3, 4}})}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Float("y"); v != 20 {
		t.Errorf("y = %v", v)
	}
	if _, err := ctx.ExecuteFile(filepath.Join(dir, "missing.dml"), nil); err == nil {
		t.Error("expected missing file error")
	}
}

func TestPublicAPIReuseStats(t *testing.T) {
	ctx := systemds.NewContext(systemds.WithReuse(true), systemds.WithParallelism(2))
	X, y := systemds.SyntheticRegression(500, 10, 1.0, 21)
	script := `
lambdas = seq(1, 8, 1) / 100
[B, losses] = gridSearchLM(X, y, lambdas)
`
	if _, err := ctx.Execute(script, map[string]any{"X": X, "y": y}, "B"); err != nil {
		t.Fatal(err)
	}
	stats := ctx.CacheStats()
	if stats.Hits == 0 {
		t.Errorf("expected cache hits, got %+v", stats)
	}
	ctx.ClearCache()
	if ctx.CacheStats().BytesCached != 0 {
		t.Error("ClearCache did not drop entries")
	}
}

func TestPublicAPIRegisterBuiltin(t *testing.T) {
	ctx := systemds.NewContext()
	ctx.RegisterBuiltin("doubleIt", `
doubleIt = function(Matrix[Double] X) return (Matrix[Double] Y) {
  Y = X * 2
}
`)
	found := false
	for _, n := range ctx.Builtins() {
		if n == "doubleIt" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered builtin not listed")
	}
	res, err := ctx.Execute(`Y = doubleIt(X)`,
		map[string]any{"X": systemds.MatrixFromRows([][]float64{{1, 2}})}, "Y")
	if err != nil {
		t.Fatal(err)
	}
	Y, _ := res.Matrix("Y")
	if Y.Get(0, 1) != 4 {
		t.Errorf("doubleIt = %v", Y)
	}
}

func TestPublicAPIPreparedScript(t *testing.T) {
	ctx := systemds.NewContext()
	p, err := ctx.Prepare(`score = sum(X %*% B)`, "score")
	if err != nil {
		t.Fatal(err)
	}
	B := systemds.MatrixFromRows([][]float64{{1}, {2}})
	for i := 1; i <= 3; i++ {
		X := systemds.MatrixFromRows([][]float64{{float64(i), 1}})
		res, err := p.Execute(map[string]any{"X": X, "B": B})
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := res.Float("score"); v != float64(i)+2 {
			t.Errorf("run %d: score = %v", i, v)
		}
	}
}

func TestPublicAPIPrintRedirect(t *testing.T) {
	ctx := systemds.NewContext()
	var buf bytes.Buffer
	ctx.SetOutput(&buf)
	if _, err := ctx.Execute(`print("hello from dml")`, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hello from dml") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestPublicAPIFederatedEndToEnd(t *testing.T) {
	x1, y1 := systemds.SyntheticRegression(200, 6, 1.0, 31)
	x2, y2 := systemds.SyntheticRegression(200, 6, 1.0, 32)
	s1, err := systemds.StartFederatedWorker("127.0.0.1:0", map[string]*systemds.Matrix{"X": x1, "y": y1})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Shutdown()
	s2, err := systemds.StartFederatedWorker("127.0.0.1:0", map[string]*systemds.Matrix{"X": x2, "y": y2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	Xfed, err := systemds.Federated(400, 6, []systemds.FederatedRange{
		{RowStart: 0, RowEnd: 200, ColStart: 0, ColEnd: 6, Address: s1.Addr, VarName: "X"},
		{RowStart: 200, RowEnd: 400, ColStart: 0, ColEnd: 6, Address: s2.Addr, VarName: "X"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer Xfed.Close()
	yfed, err := systemds.Federated(400, 1, []systemds.FederatedRange{
		{RowStart: 0, RowEnd: 200, ColStart: 0, ColEnd: 1, Address: s1.Addr, VarName: "y"},
		{RowStart: 200, RowEnd: 400, ColStart: 0, ColEnd: 1, Address: s2.Addr, VarName: "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer yfed.Close()
	ctx := systemds.NewContext()
	res, err := ctx.Execute(`
A = t(X) %*% X + diag(matrix(0.001, ncol(X), 1))
b = t(X) %*% y
B = solve(A, b)
n = nrow(X)
`, map[string]any{"X": Xfed, "y": yfed}, "B", "n")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Float("n"); n != 400 {
		t.Errorf("federated nrow = %v", n)
	}
	B, _ := res.Matrix("B")
	if B.Rows() != 6 {
		t.Errorf("federated model dims %dx%d", B.Rows(), B.Cols())
	}
}

func TestPublicAPIDistributedBackendOption(t *testing.T) {
	// force tiny operator budget so matrix multiplications compile to the
	// blocked distributed backend, and verify results stay correct
	ctx := systemds.NewContext(
		systemds.WithDistributedBackend(true),
		systemds.WithOperatorMemBudget(1024),
	)
	X, y := systemds.SyntheticRegression(300, 10, 1.0, 41)
	res, err := ctx.Execute(`
B = lmDS(X, y, 0.0001)
yhat = lmPredict(X, B)
trainR2 = r2(yhat, y)
`, map[string]any{"X": X, "y": y}, "trainR2")
	if err != nil {
		t.Fatal(err)
	}
	if r2, _ := res.Float("trainR2"); r2 < 0.99 {
		t.Errorf("distributed-backend R2 = %v", r2)
	}
}

func TestPublicAPIBufferPoolSpill(t *testing.T) {
	ctx := systemds.NewContext(systemds.WithBufferPool(256 * 1024)) // 256 KB budget
	res, err := ctx.Execute(`
A = rand(rows=400, cols=400, seed=1)
B = rand(rows=400, cols=400, seed=2)
C = A %*% B
D = t(C) %*% C
s = sum(D)
`, nil, "s")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Float("s"); v <= 0 {
		t.Errorf("sum = %v", v)
	}
}

func TestPublicAPIErrorsSurface(t *testing.T) {
	ctx := systemds.NewContext()
	if _, err := ctx.Execute(`x = `, nil); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ctx.Execute(`x = notAFunction(1)`, nil); err == nil {
		t.Error("expected validation error")
	}
	if _, err := ctx.Execute(`x = solve(matrix(1, 2, 3), matrix(1, 2, 1))`, nil, "x"); err == nil {
		t.Error("expected runtime error for non-square solve")
	}
}

// TestPublicAPIInterOpScheduler runs a lifecycle-style script with several
// independent branches, control flow and prints under the inter-operator
// scheduler and requires bitwise-identical results and identical print output
// compared to sequential execution.
func TestPublicAPIInterOpScheduler(t *testing.T) {
	script := `
G1 = t(X) %*% X
G2 = X %*% t(X)
C = X * 2
D = X + 1
E = C + D
B = lm(X, y, reg=0.0001)
yhat = lmPredict(X, B)
err = sum((yhat - y)^2)
total = sum(G1) + sum(G2) + sum(E)
print("branches done")
if (total > 0) { flag = 1 } else { flag = 0 }
acc = 0
for (i in 1:4) { acc = acc + total + i }
print("script done")
`
	X, y := systemds.SyntheticRegression(200, 6, 1.0, 5)
	run := func(interOp int) (systemds.Results, string) {
		ctx := systemds.NewContext(systemds.WithParallelism(2), systemds.WithInterOpParallelism(interOp))
		var out strings.Builder
		ctx.SetOutput(&out)
		res, err := ctx.Execute(script, map[string]any{"X": X, "y": y},
			"E", "B", "err", "total", "flag", "acc")
		if err != nil {
			t.Fatal(err)
		}
		return res, out.String()
	}
	seqRes, seqOut := run(1)
	parRes, parOut := run(4)
	if seqOut != parOut {
		t.Errorf("print output differs:\nsequential: %q\nscheduled:  %q", seqOut, parOut)
	}
	for _, name := range []string{"err", "total", "flag", "acc"} {
		a, err := seqRes.Float(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parRes.Float(name)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: sequential %v != scheduled %v", name, a, b)
		}
	}
	for _, name := range []string{"E", "B"} {
		a, err := seqRes.Matrix(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parRes.Matrix(name)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equals(b, 0) {
			t.Errorf("matrix %s differs between sequential and scheduled execution", name)
		}
	}
}

func TestPublicAPIExplainPlan(t *testing.T) {
	ctx := systemds.NewContext(
		systemds.WithDistributedBackend(true),
		systemds.WithOperatorMemBudget(16_000),
	)
	A := systemds.RandMatrix(64, 256, 1.0, 71)
	B := systemds.RandMatrix(256, 32, 1.0, 72)
	explain, err := ctx.ExplainPlan(`C = A %*% B`, map[string]any{"A": A, "B": B})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "MatMult") || !strings.Contains(explain, "plan=DIST:") {
		t.Errorf("ExplainPlan output misses the annotated matmult plan:\n%s", explain)
	}
	// CP-only sessions plan everything locally
	cp := systemds.NewContext()
	explain, err = cp.ExplainPlan(`C = A %*% B`, map[string]any{"A": A, "B": B})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain, "DIST") {
		t.Errorf("CP session must not plan distributed operators:\n%s", explain)
	}
}
