module github.com/systemds/systemds-go

go 1.24
