GO ?= go
SHELL := /bin/bash

.PHONY: all build vet test race bench bench-all

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the concurrency-bearing packages: the inter-operator
# scheduler and parfor backend, the blocked distributed backend, the federated
# worker, the sparse edit overlay, and the compiler/public-API differential
# tests that drive them.
race:
	$(GO) test -race ./internal/runtime/... ./internal/dist/... ./internal/fed/... ./internal/matrix/... ./internal/compress/... ./internal/compiler/... .

# Compressed-vs-dense MV kernels, planner-vs-forced matmult strategies,
# fused-vs-unfused and kernel-parallelism benchmarks with allocation stats;
# the parsed results land in BENCH_pr5.json (the perf trajectory of the
# repo). The compressed benchmarks additionally report databytes/op — the
# bytes of matrix representation streamed per operation.
bench:
	set -o pipefail; $(GO) test -bench 'Compressed|LoopEpoch|MatMultStrategy|Fused|Unfused|MMChain|KernelParallel' -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_pr5.json

# Full benchmark sweep (single iteration per benchmark).
bench-all:
	$(GO) test -bench . -benchtime=1x -run '^$$' .
