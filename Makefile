GO ?= go

.PHONY: all build vet test race bench

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the concurrency-bearing packages: the inter-operator
# scheduler and parfor backend, the blocked distributed backend, the federated
# worker, the sparse edit overlay, and the compiler/public-API differential
# tests that drive them.
race:
	$(GO) test -race ./internal/runtime/... ./internal/dist/... ./internal/fed/... ./internal/matrix/... ./internal/compiler/... .

bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' .
