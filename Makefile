GO ?= go
SHELL := /bin/bash

.PHONY: all build vet lint test race bench bench-all trace-check

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static contract checks: go vet plus sysdslint, the in-repo analyzer suite
# enforcing the determinism, layering, and concurrency contracts (maporder,
# nofma, threadplumb, layering, goroutineerr; see DESIGN.md "Enforced
# invariants"). Suppressions require a written //sysds:ok(<analyzer>): reason.
lint: vet
	$(GO) run ./cmd/sysdslint ./...

test:
	$(GO) test ./...

# Race-enabled run of the full module (bufferpool, paramserv, frame, tensor
# and lineage included — nothing is skipped), followed by the compressed
# lm-loop determinism gate run twice in one process (-count=2 compares
# fingerprints across invocations via package state), and a bench smoke that
# drives the tiled GEMM engine's multi-threaded row-panel workers plus the
# deep compressed kernels (TSMM, matrix right-hand side, partitioned dist MV)
# under the race detector.
race:
	$(GO) test -race ./...
	$(GO) test -race -run TestCompressedLmLoopDeterminism -count=2 ./internal/core/
	$(GO) test -race -bench 'KernelGEMMTiled512|KernelMultiplyAccTiled|CompressedTSMM$$|CompressedMMDense$$|CompressedDistMV' -benchtime=1x -run '^$$' .

# Observability acceptance gate: run the traced lm-loop scenario end to end
# (distributed backend forced by a small memory budget, compression site
# planted) with -trace and -stats, then validate the exported Chrome trace —
# well-formed JSON, resolvable parents, strict per-lane nesting, instruction
# spans covering >= 90% of the run span — and reconcile the heavy-hitter
# footer against the trace within 20%.
trace-check:
	$(GO) run ./cmd/sysds -f scripts/lm_trace.dml -compress -distributed -mem-budget 65536 \
		-trace /tmp/sysds-trace.json -stats -print s > /tmp/sysds-stats.txt
	$(GO) run ./cmd/tracecheck -trace /tmp/sysds-trace.json -stats /tmp/sysds-stats.txt

# Compressed-vs-dense MV/TSMM/matrix-RHS kernels (plus the partitioned dist
# executor), planner-vs-forced matmult strategies, fused-vs-unfused,
# kernel-parallelism and tiled-vs-simple GEMM/TSMM/MultiplyAcc benchmarks with
# allocation stats, plus the adaptive-runtime pairs (cold-vs-warm cross-run
# lineage reuse, uncalibrated-vs-calibrated planning); the parsed results land
# in BENCH_pr9.json (the perf trajectory of the repo). The compressed and
# lineage benchmarks additionally report databytes/op (bytes of matrix
# representation streamed or spilled per operation) and the dense kernel
# benchmarks report gflops.
bench:
	set -o pipefail; $(GO) test -bench 'Compressed|LoopEpoch|MatMultStrategy|Fused|Unfused|MMChain|KernelParallel|KernelGEMM|KernelTSMM|KernelMultiplyAcc|LineageReuse|CalibrationDelta' -benchmem -timeout 30m -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_pr9.json

# Full benchmark sweep (single iteration per benchmark).
bench-all:
	$(GO) test -bench . -benchtime=1x -run '^$$' .
