GO ?= go
SHELL := /bin/bash

.PHONY: all build vet test race bench bench-all

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the concurrency-bearing packages: the inter-operator
# scheduler and parfor backend, the blocked distributed backend, the federated
# worker, the sparse edit overlay, and the compiler/public-API differential
# tests that drive them. The trailing bench smoke drives the tiled GEMM
# engine's multi-threaded row-panel workers under the race detector.
race:
	$(GO) test -race ./internal/runtime/... ./internal/dist/... ./internal/fed/... ./internal/matrix/... ./internal/compress/... ./internal/compiler/... .
	$(GO) test -race -bench 'KernelGEMMTiled512|KernelMultiplyAccTiled' -benchtime=1x -run '^$$' .

# Compressed-vs-dense MV kernels, planner-vs-forced matmult strategies,
# fused-vs-unfused, kernel-parallelism and tiled-vs-simple GEMM/TSMM/
# MultiplyAcc benchmarks with allocation stats; the parsed results land in
# BENCH_pr6.json (the perf trajectory of the repo). The compressed benchmarks
# additionally report databytes/op (bytes of matrix representation streamed
# per operation) and the dense kernel benchmarks report gflops.
bench:
	set -o pipefail; $(GO) test -bench 'Compressed|LoopEpoch|MatMultStrategy|Fused|Unfused|MMChain|KernelParallel|KernelGEMM|KernelTSMM|KernelMultiplyAcc' -benchmem -timeout 30m -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_pr6.json

# Full benchmark sweep (single iteration per benchmark).
bench-all:
	$(GO) test -bench . -benchtime=1x -run '^$$' .
