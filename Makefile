GO ?= go
SHELL := /bin/bash

.PHONY: all build vet test race bench bench-all

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the concurrency-bearing packages: the inter-operator
# scheduler and parfor backend, the blocked distributed backend, the federated
# worker, the sparse edit overlay, and the compiler/public-API differential
# tests that drive them.
race:
	$(GO) test -race ./internal/runtime/... ./internal/dist/... ./internal/fed/... ./internal/matrix/... ./internal/compiler/... .

# Planner-vs-forced matmult strategies, fused-vs-unfused and
# kernel-parallelism benchmarks with allocation stats; the parsed results
# land in BENCH_pr4.json (the perf trajectory of the repo).
bench:
	set -o pipefail; $(GO) test -bench 'MatMultStrategy|Fused|Unfused|MMChain|KernelParallel' -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_pr4.json

# Full benchmark sweep (single iteration per benchmark).
bench-all:
	$(GO) test -bench . -benchtime=1x -run '^$$' .
