// Package systemds is the public API of SystemDS-Go, a declarative machine
// learning system for the end-to-end data science lifecycle (a Go
// reproduction of "SystemDS: A Declarative Machine Learning System for the
// End-to-End Data Science Lifecycle", CIDR 2020).
//
// A Context compiles and executes DML scripts — an R-like language for linear
// algebra, statistics and control flow — against in-memory matrices, frames
// and federated data. The engine performs HOP-level rewrites, size
// propagation, operator selection between local and blocked-distributed
// backends, lineage tracing, and lineage-based reuse of intermediates across
// lifecycle tasks.
//
// Quickstart:
//
//	ctx := systemds.NewContext()
//	X := systemds.RandMatrix(1000, 10, 1.0, 7)
//	res, err := ctx.Execute(`
//	    B = lm(X, y)
//	    yhat = lmPredict(X, B)
//	    err = mse(yhat, y)
//	`, map[string]any{"X": X, "y": y}, "B", "err")
package systemds

import (
	"fmt"
	"io"
	"os"

	"github.com/systemds/systemds-go/internal/bufferpool"
	"github.com/systemds/systemds-go/internal/core"
	"github.com/systemds/systemds-go/internal/fed"
	"github.com/systemds/systemds-go/internal/frame"
	sdsio "github.com/systemds/systemds-go/internal/io"
	"github.com/systemds/systemds-go/internal/lineage"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
	"github.com/systemds/systemds-go/internal/runtime"
)

// Matrix is a dense or sparse FP64 matrix (the primary data type of DML
// scripts).
type Matrix = matrix.MatrixBlock

// Frame is a 2D table with a per-column schema, used for raw heterogeneous
// data before feature transformation.
type Frame = frame.FrameBlock

// FederatedMatrix references data partitions living on federated workers.
type FederatedMatrix = fed.FederatedMatrix

// FederatedRange maps an index range of a federated matrix to a worker
// address and worker-local variable.
type FederatedRange = fed.Range

// CacheStats reports reuse-cache effectiveness (hits, misses, partial reuse).
type CacheStats = lineage.CacheStats

// LineageStoreStats reports persistent lineage-store activity (files, bytes,
// hits, evictions, corrupt files dropped).
type LineageStoreStats = bufferpool.FileStoreStats

// TraceSpan is one recorded span of a traced run: a hierarchical interval
// (run, basic block, instruction, or kernel sub-phase) with parent linkage,
// monotonic start/duration in nanoseconds, and bytes moved where meaningful.
type TraceSpan = obs.Record

// OpMetric is one row of the per-opcode heavy-hitter table aggregated from a
// traced run: execution count, cumulative wall and self time, bytes produced.
type OpMetric = obs.OpMetric

// ExecStats is the per-run execution statistics bundle: reuse cache, buffer
// pool, distributed backend, fused operators, compression, per-instruction
// plan records, lineage store, and (when tracing is on) per-opcode metrics.
type ExecStats = core.Stats

// FormatHeavyHitters renders trace spans as a SystemDS-style top-k
// heavy-hitter table (by self time) with a run wall-time footer.
var FormatHeavyHitters = obs.FormatHeavyHitters

// Option configures a Context.
type Option func(*runtime.Config)

// WithParallelism sets the number of threads used by kernels and parfor.
func WithParallelism(n int) Option {
	return func(c *runtime.Config) { c.Parallelism = n }
}

// WithInterOpParallelism sets the worker-pool size of the inter-operator DAG
// scheduler: with n > 1, independent instructions of a basic block execute
// concurrently (results stay identical to sequential execution); n <= 1 keeps
// strictly sequential instruction execution (the default).
func WithInterOpParallelism(n int) Option {
	return func(c *runtime.Config) { c.InterOpParallelism = n }
}

// WithLineage enables or disables lineage tracing.
func WithLineage(enabled bool) Option {
	return func(c *runtime.Config) { c.LineageEnabled = enabled }
}

// WithReuse enables lineage-based reuse of intermediates with the given cache
// budget in bytes (0 budget uses the default of 1 GB).
func WithReuse(enabled bool) Option {
	return func(c *runtime.Config) {
		c.ReuseEnabled = enabled
		if enabled {
			c.LineageEnabled = true
		}
	}
}

// WithCacheBudget sets the reuse-cache budget in bytes.
func WithCacheBudget(bytes int64) Option {
	return func(c *runtime.Config) { c.CacheBudget = bytes }
}

// WithBufferPool sets the buffer-pool budget in bytes; intermediates beyond
// the budget are evicted to temporary files.
func WithBufferPool(bytes int64) Option {
	return func(c *runtime.Config) { c.BufferPoolBudget = bytes }
}

// WithDistributedBackend allows the compiler to select the blocked
// distributed backend for operations whose memory estimate exceeds the
// operator budget.
func WithDistributedBackend(enabled bool) Option {
	return func(c *runtime.Config) { c.DistEnabled = enabled }
}

// WithOperatorMemBudget sets the per-operator memory budget in bytes used for
// CP-vs-distributed operator selection.
func WithOperatorMemBudget(bytes int64) Option {
	return func(c *runtime.Config) { c.OperatorMemBudget = bytes }
}

// WithDistBlocksize sets the block side length of the blocked distributed
// backend (default 1024). The planner's grid-based matmult strategy costs
// are derived from it.
func WithDistBlocksize(n int) Option {
	return func(c *runtime.Config) { c.DistBlocksize = n }
}

// WithBLAS selects the register-blocked "native BLAS"-style dense kernel for
// matrix multiplications (SysDS-B in the paper's Figure 5(a)).
func WithBLAS(enabled bool) Option {
	return func(c *runtime.Config) { c.UseBLAS = enabled }
}

// WithFusion toggles the HOP-level operator fusion pass (fused mmchain and
// cellwise-aggregate pipelines). Fusion is enabled by default; disabling it
// is mainly useful for fused-vs-unfused comparisons.
func WithFusion(enabled bool) Option {
	return func(c *runtime.Config) { c.FusionDisabled = !enabled }
}

// WithCompression toggles compressed linear algebra: before loops that
// re-read large operands, the compiler plants cost-gated compression sites;
// the runtime's sample-based planner picks per-column encodings (dense
// dictionary coding, run-length encoding, or an uncompressed fallback) or
// rejects compression when the estimated ratio is too small, and supported
// operators (matrix-vector and vector-matrix products, scalar and cellwise
// unary operations, sums and extrema) execute directly on the compressed
// representation. Unsupported operators decompress transparently (counted in
// the execution statistics). Compression is disabled by default.
func WithCompression(enabled bool) Option {
	return func(c *runtime.Config) { c.CompressionEnabled = enabled }
}

// WithTempDir sets the spill directory for the buffer pool.
func WithTempDir(dir string) Option {
	return func(c *runtime.Config) { c.TempDir = dir }
}

// WithPersistentLineage enables cross-run lineage reuse rooted at dir:
// reuse-cache entries are written through to spill files there, later
// sessions (including separate processes) pointed at the same directory
// reload them instead of recomputing, and the cost-model calibration learned
// from each run's estimated-vs-actual plan records is persisted alongside.
// Implies lineage tracing and reuse.
func WithPersistentLineage(dir string) Option {
	return func(c *runtime.Config) {
		c.PersistentLineageDir = dir
		if dir != "" {
			c.LineageEnabled = true
			c.ReuseEnabled = true
		}
	}
}

// WithPersistentLineageBudget sets the payload byte budget of the persistent
// lineage store (default 4 GB); the lowest-benefit entries (compute time
// saved per byte retained) are evicted first.
func WithPersistentLineageBudget(bytes int64) Option {
	return func(c *runtime.Config) { c.PersistentLineageBudget = bytes }
}

// WithTracing enables the hierarchical span tracer for runs on this context:
// each Execute records nested spans (run, basic block, instruction, kernel
// sub-phases like distributed partition tasks, buffer-pool spill/restore,
// compression encode/decompress, lineage-store access, and federated RPCs,
// with worker-side spans stitched under their RPC). Inspect results with
// Trace, WriteTrace, LastRunStats, and ExplainPlanAnnotated. Tracing off (the
// default) costs one atomic flag check per potential span, with no
// allocations.
func WithTracing(enabled bool) Option {
	return func(c *runtime.Config) { c.TraceEnabled = enabled }
}

// Context is a SystemDS-Go session: it owns the compiler configuration, the
// builtin registry and the session-wide reuse cache.
type Context struct {
	engine *core.Engine
}

// NewContext creates a session with the given options.
func NewContext(opts ...Option) *Context {
	cfg := runtime.DefaultConfig()
	for _, opt := range opts {
		opt(cfg)
	}
	return &Context{engine: core.NewEngine(cfg)}
}

// SetOutput redirects the output of DML print() statements (default: stdout).
func (c *Context) SetOutput(w io.Writer) { c.engine.SetOutput(w) }

// RegisterBuiltin registers an additional DML-bodied builtin function under
// the given name (Section 2.2's registration mechanism).
func (c *Context) RegisterBuiltin(name, dmlSource string) {
	c.engine.Registry().Register(name, dmlSource)
}

// Builtins returns the names of all registered DML-bodied builtins.
func (c *Context) Builtins() []string { return c.engine.Registry().Names() }

// CacheStats returns the session reuse-cache statistics.
func (c *Context) CacheStats() CacheStats { return c.engine.CacheStats() }

// LineageStoreStats returns the persistent lineage-store statistics (the zero
// value when WithPersistentLineage is not configured).
func (c *Context) LineageStoreStats() LineageStoreStats { return c.engine.LineageStoreStats() }

// ClearCache drops all reuse-cache entries.
func (c *Context) ClearCache() { c.engine.ClearCache() }

// Execute compiles and runs a DML script with the given named inputs and
// returns the requested outputs. Supported input types: *Matrix, *Frame,
// *FederatedMatrix, float64, int, bool and string.
func (c *Context) Execute(script string, inputs map[string]any, outputs ...string) (Results, error) {
	res, _, err := c.engine.Execute(script, inputs, outputs)
	if err != nil {
		return nil, err
	}
	return Results(res), nil
}

// ExplainPlan compiles a DML script against the given inputs and returns the
// physical plan chosen by the cost-based planner: per operator the
// dimensions, memory estimate, CP/DIST placement, the matmult strategy
// (broadcast-left/right, grid join, shuffle) and the modeled compute and
// shuffle costs. Blocks whose sizes are unknown at compile time show their
// conservative initial plan; dynamic recompilation re-plans them at runtime.
func (c *Context) ExplainPlan(script string, inputs map[string]any) (string, error) {
	return c.engine.ExplainPlan(script, inputs)
}

// ExplainPlanAnnotated renders the plan like ExplainPlan and, when the
// context's last Execute ran with tracing enabled (WithTracing), joins the
// measured per-opcode metrics onto the operator lines: execution count, wall
// and self time, bytes produced.
func (c *Context) ExplainPlanAnnotated(script string, inputs map[string]any) (string, error) {
	return c.engine.ExplainPlanAnnotated(script, inputs)
}

// Trace returns the span records of the last traced Execute (nil without
// WithTracing): merged across workers, sorted by start time, with kernel
// sub-phase spans parented under their instruction spans.
func (c *Context) Trace() []TraceSpan { return c.engine.TraceRecords() }

// WriteTrace writes the last traced Execute as Chrome trace-event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
func (c *Context) WriteTrace(w io.Writer) error { return c.engine.WriteTrace(w) }

// LastRunStats returns the execution statistics of the most recent Execute on
// this context, or nil before the first run. With tracing enabled the bundle
// includes the per-opcode heavy-hitter metrics.
func (c *Context) LastRunStats() *ExecStats { return c.engine.LastRunStats() }

// ExecuteFile reads a DML script from a file and executes it.
func (c *Context) ExecuteFile(path string, inputs map[string]any, outputs ...string) (Results, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("systemds: read script %s: %w", path, err)
	}
	return c.Execute(string(src), inputs, outputs...)
}

// Prepare pre-compiles a script for repeated low-latency execution with
// different inputs (the JMLC-style embedded scoring API).
func (c *Context) Prepare(script string, outputs ...string) (*PreparedScript, error) {
	p, err := c.engine.Prepare(script, outputs)
	if err != nil {
		return nil, err
	}
	return &PreparedScript{prepared: p}, nil
}

// PreparedScript is a pre-compiled script.
type PreparedScript struct {
	prepared *core.Prepared
}

// Execute runs the prepared script with the given inputs.
func (p *PreparedScript) Execute(inputs map[string]any) (Results, error) {
	res, err := p.prepared.Execute(inputs)
	if err != nil {
		return nil, err
	}
	return Results(res), nil
}

// Results holds named script outputs.
type Results map[string]any

// Matrix returns a matrix output.
func (r Results) Matrix(name string) (*Matrix, error) {
	v, ok := r[name]
	if !ok {
		return nil, fmt.Errorf("systemds: no output %q", name)
	}
	m, ok := v.(*Matrix)
	if !ok {
		return nil, fmt.Errorf("systemds: output %q is %T, not a matrix", name, v)
	}
	return m, nil
}

// Float returns a numeric scalar output.
func (r Results) Float(name string) (float64, error) {
	v, ok := r[name]
	if !ok {
		return 0, fmt.Errorf("systemds: no output %q", name)
	}
	switch x := v.(type) {
	case float64:
		return x, nil
	case bool:
		if x {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("systemds: output %q is %T, not a scalar", name, v)
	}
}

// Bool returns a boolean scalar output.
func (r Results) Bool(name string) (bool, error) {
	v, ok := r[name]
	if !ok {
		return false, fmt.Errorf("systemds: no output %q", name)
	}
	switch x := v.(type) {
	case bool:
		return x, nil
	case float64:
		return x != 0, nil
	default:
		return false, fmt.Errorf("systemds: output %q is %T, not a boolean", name, v)
	}
}

// String returns a string scalar output.
func (r Results) String(name string) (string, error) {
	v, ok := r[name]
	if !ok {
		return "", fmt.Errorf("systemds: no output %q", name)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("systemds: output %q is %T, not a string", name, v)
	}
	return s, nil
}

// --- Matrix and frame construction helpers ---

// NewMatrix creates a dense rows x cols matrix from row-major data (data may
// be nil for an all-zero matrix).
func NewMatrix(rows, cols int, data []float64) *Matrix {
	if data == nil {
		return matrix.NewDense(rows, cols)
	}
	return matrix.NewDenseFromSlice(rows, cols, data)
}

// MatrixFromRows creates a matrix from a slice of rows.
func MatrixFromRows(rows [][]float64) *Matrix { return matrix.FromRows(rows) }

// RandMatrix creates a uniformly random matrix with the given sparsity and
// seed.
func RandMatrix(rows, cols int, sparsity float64, seed int64) *Matrix {
	return matrix.RandUniform(rows, cols, 0, 1, sparsity, seed)
}

// SyntheticRegression generates a synthetic regression dataset (features X
// and response y = X*w + noise) with the given sparsity.
func SyntheticRegression(rows, cols int, sparsity float64, seed int64) (x, y *Matrix) {
	return matrix.SyntheticRegression(rows, cols, sparsity, seed)
}

// SyntheticClassification generates a synthetic binary classification dataset
// with labels in {0, 1}.
func SyntheticClassification(rows, cols int, sparsity float64, seed int64) (x, y *Matrix) {
	return matrix.SyntheticClassification(rows, cols, sparsity, seed)
}

// ReadMatrixCSV reads a numeric CSV file into a matrix using the
// multi-threaded reader.
func ReadMatrixCSV(path string) (*Matrix, error) {
	return sdsio.ReadMatrixCSV(path, sdsio.DefaultCSVOptions())
}

// WriteMatrixCSV writes a matrix to a CSV file.
func WriteMatrixCSV(path string, m *Matrix) error {
	return sdsio.WriteMatrixCSV(path, m, sdsio.DefaultCSVOptions())
}

// ReadFrameCSV reads a CSV file into a frame with schema inference; header
// selects whether the first line holds column names.
func ReadFrameCSV(path string, header bool) (*Frame, error) {
	opts := sdsio.DefaultCSVOptions()
	opts.Header = header
	return sdsio.ReadFrameCSV(path, nil, opts)
}

// --- Federated ML helpers (Section 3.3) ---

// FederatedWorker is an in-process federated worker (sites normally run the
// standalone fedworker binary).
type FederatedWorker struct {
	worker *fed.Worker
	Addr   string
}

// StartFederatedWorker starts a federated worker listening on addr (use
// "127.0.0.1:0" for an ephemeral port) and optionally preloads data under the
// given variable names.
func StartFederatedWorker(addr string, data map[string]*Matrix) (*FederatedWorker, error) {
	w := fed.NewWorker(nil)
	for name, m := range data {
		w.PutLocal(name, m)
	}
	bound, err := w.Serve(addr)
	if err != nil {
		return nil, err
	}
	return &FederatedWorker{worker: w, Addr: bound}, nil
}

// Shutdown stops the worker.
func (w *FederatedWorker) Shutdown() { w.worker.Shutdown() }

// Federated creates a federated matrix of the given total size from per-site
// ranges. The federated matrix can be bound as a script input like any other
// matrix; federated instructions push computation to the sites.
func Federated(rows, cols int64, ranges []FederatedRange) (*FederatedMatrix, error) {
	return fed.NewFederatedMatrix(rows, cols, ranges)
}
